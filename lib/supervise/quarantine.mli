(** Per-cell quarantine: k strikes and the cell is out.

    Each grid cell accumulates {e strikes} — deterministic-protocol
    failures reported by the pool. A cell crossing the threshold is
    marked {e degraded}: its remaining trials are skipped (journaled as
    quarantined so resume does not resurrect them) and the campaign
    report carries the cell in its health section. This is what
    guarantees a campaign over pathological cells (nonresponsive plans,
    unbounded-silent livelocks) terminates: each cell costs at most
    [threshold] deadline waits, not [trials] of them.

    Thread-safe; strikes from racing workers may both see the crossing,
    but the [supervise.quarantined] counter and {!degraded_cells} count
    each cell once. *)

type t

val create : ?threshold:int -> cells:int -> unit -> t
(** [threshold] strikes (default 3) degrade a cell.
    @raise Invalid_argument if [threshold < 1] or [cells < 0]. *)

val threshold : t -> int

val strike : t -> cell:int -> [ `Active | `Degraded ]
(** Record a strike against [cell]; the state after the strike. The
    strike that crosses the threshold bumps [supervise.quarantined]. *)

val degraded : t -> cell:int -> bool
val strikes : t -> cell:int -> int

val degraded_cells : t -> int list
(** Ascending indices of degraded cells. *)
