module Clock = Ffault_runtime.Clock
module Metrics = Ffault_telemetry.Metrics
module Cancel = Ffault_runtime.Cancel

let m_flags = Metrics.counter "supervise.watchdog_flags"

type t = {
  hb : Heartbeat.t;
  stall_ns : int;
  clock : Clock.t;
  created_at : int;
  lock : Mutex.t;
  tokens : Cancel.t option array;
  (* The beat timestamp each slot was last flagged at (edge trigger):
     flagging is keyed on the stall epoch, so a slot is flagged once per
     stall, and a fresh beat opens a fresh epoch. min_int = never. *)
  flagged_at : int array;
}

let create ?clock ~heartbeat ~stall_ns () =
  if stall_ns < 1 then invalid_arg "Watchdog.create: stall_ns < 1";
  let clock = Option.value clock ~default:(Heartbeat.clock heartbeat) in
  let n = Heartbeat.slots heartbeat in
  {
    hb = heartbeat;
    stall_ns;
    clock;
    created_at = Clock.now_ns clock;
    lock = Mutex.create ();
    tokens = Array.make n None;
    flagged_at = Array.make n min_int;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let attach t ~slot token = with_lock t (fun () -> t.tokens.(slot) <- Some token)
let detach t ~slot = with_lock t (fun () -> t.tokens.(slot) <- None)

(* The reference timestamp of a slot's current epoch: its last beat, or
   the watchdog's birth if it never beat (a worker wedged before its
   first beat must still be caught). *)
let epoch t slot =
  match Heartbeat.last_ns t.hb ~slot with Some ts -> ts | None -> t.created_at

let poll t =
  with_lock t (fun () ->
      let now = Clock.now_ns t.clock in
      let stuck = ref [] in
      for slot = Heartbeat.slots t.hb - 1 downto 0 do
        let ep = epoch t slot in
        if now - ep > t.stall_ns && t.flagged_at.(slot) <> ep then begin
          t.flagged_at.(slot) <- ep;
          Metrics.incr m_flags;
          (match t.tokens.(slot) with
          | Some tok ->
              Cancel.cancel tok
                ~reason:(Printf.sprintf "watchdog: no heartbeat for %dms" ((now - ep) / 1_000_000))
          | None -> ());
          stuck := slot :: !stuck
        end
      done;
      !stuck)

let flagged t ~slot = with_lock t (fun () -> t.flagged_at.(slot) = epoch t slot)

type handle = { stop_flag : bool Atomic.t; thread : Thread.t }

let start ?(interval_s = 0.1) t =
  let stop_flag = Atomic.make false in
  let thread =
    Thread.create
      (fun () ->
        while not (Atomic.get stop_flag) do
          ignore (poll t);
          (* sleep in short slices so stop doesn't wait a full interval *)
          let slept = ref 0.0 in
          while (not (Atomic.get stop_flag)) && !slept < interval_s do
            Thread.delay 0.02;
            slept := !slept +. 0.02
          done
        done)
      ()
  in
  { stop_flag; thread }

let stop h = if not (Atomic.exchange h.stop_flag true) then Thread.join h.thread
