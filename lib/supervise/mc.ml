module Consensus_mc = Ffault_runtime.Consensus_mc
module Cancel = Ffault_runtime.Cancel

type result = {
  mc : Consensus_mc.result;
  stalls : int;
  watched : bool;
}

let default_stall_floor_s = 0.5
let default_stall_factor = 4.0

let stall_bound_s ~deadline_s ~override_s =
  match override_s with
  | Some s -> Some s
  | None ->
      Option.map
        (fun d -> Float.max default_stall_floor_s (default_stall_factor *. d))
        deadline_s

let execute ?watchdog_stall_s ?cancel (cfg : Consensus_mc.config) =
  (match watchdog_stall_s with
  | Some s when (not (Float.is_finite s)) || s <= 0.0 ->
      invalid_arg "Mc.execute: watchdog_stall_s must be finite and positive"
  | _ -> ());
  match stall_bound_s ~deadline_s:cfg.Consensus_mc.deadline_s ~override_s:watchdog_stall_s with
  | None -> { mc = Consensus_mc.execute ?cancel cfg; stalls = 0; watched = false }
  | Some stall_s ->
      let n = cfg.Consensus_mc.n_domains in
      let token =
        match cancel, cfg.Consensus_mc.deadline_s with
        | Some c, _ -> c
        | None, Some s -> Cancel.after ~seconds:s
        | None, None -> Cancel.create ()
      in
      let hb = Heartbeat.create ~slots:n () in
      let wd = Watchdog.create ~heartbeat:hb ~stall_ns:(int_of_float (stall_s *. 1e9)) () in
      (* one shared token: a wedged domain dooms the whole trial, so
         every slot's flag cancels the same thing (first reason wins) *)
      for slot = 0 to n - 1 do
        Watchdog.attach wd ~slot token
      done;
      let beat me = Heartbeat.beat hb ~slot:me in
      let cfg =
        {
          cfg with
          Consensus_mc.on_progress =
            (match cfg.Consensus_mc.on_progress with
            | None -> Some beat
            | Some f ->
                Some
                  (fun me ->
                    beat me;
                    f me));
        }
      in
      let handle = Watchdog.start ~interval_s:(Float.min 0.05 (stall_s /. 4.0)) wd in
      let mc =
        match Consensus_mc.execute ~cancel:token cfg with
        | mc -> mc
        | exception e ->
            Watchdog.stop handle;
            raise e
      in
      Watchdog.stop handle;
      let stalls = ref 0 in
      for slot = 0 to n - 1 do
        if Watchdog.flagged wd ~slot then incr stalls
      done;
      { mc; stalls = !stalls; watched = true }
