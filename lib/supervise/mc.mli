(** Watchdog-supervised multicore consensus: {!Ffault_runtime.Consensus_mc}
    with a liveness beacon per domain.

    A deadline alone only helps a domain that still reaches a poll
    point; a domain wedged inside a nonresponsive CAS (the [Hang]
    style, or a genuine scheduler pathology) never polls. Here every
    domain heartbeats into its own {!Heartbeat} slot — at domain start
    and before each CAS, via the runtime's [on_progress] hook — and a
    {!Watchdog} thread watches the slots: a domain silent past the
    stall bound is flagged and the {e whole trial's} shared token is
    cancelled (consensus is all-or-nothing — a stuck domain starves its
    peers' CAS-help protocol anyway), so every domain unwinds through
    the usual [Timed_out] path.

    The stall bound defaults to [max 0.5s, 4 × deadline]: generous
    enough that a merely slow domain beats again first, so a flag means
    wedged, not busy. *)

type result = {
  mc : Ffault_runtime.Consensus_mc.result;
  stalls : int;  (** domains flagged by the watchdog (0 on a clean trial) *)
  watched : bool;  (** false when no stall bound applied (plain execute) *)
}

val stall_bound_s : deadline_s:float option -> override_s:float option -> float option
(** The effective stall bound: [override_s] if given, else
    [max 0.5, 4 × deadline] when there is a deadline, else [None] (no
    supervision — exposed for tests). *)

val execute :
  ?watchdog_stall_s:float ->
  ?cancel:Ffault_runtime.Cancel.t ->
  Ffault_runtime.Consensus_mc.config ->
  result
(** Run one supervised consensus trial. With neither a deadline in the
    config nor [watchdog_stall_s], this is exactly
    [Consensus_mc.execute] ([watched = false]). Otherwise the trial
    runs under a shared cancellation token (the given [cancel], or one
    derived from the config's deadline) with heartbeat slots per domain
    and a background watchdog; [stalls] counts flagged domains.
    @raise Invalid_argument if [watchdog_stall_s] is not finite and
    positive. *)
