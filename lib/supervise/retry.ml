type classification = Transient_infra | Deterministic_protocol

let pp_classification ppf = function
  | Transient_infra -> Fmt.string ppf "transient-infra"
  | Deterministic_protocol -> Fmt.string ppf "deterministic-protocol"

let classification_to_string = Fmt.to_to_string pp_classification

type policy = { max_retries : int; base_backoff_ns : int; max_backoff_ns : int }

let default_policy =
  { max_retries = 2; base_backoff_ns = 1_000_000; max_backoff_ns = 100_000_000 }

let policy ?(max_retries = default_policy.max_retries)
    ?(base_backoff_ns = default_policy.base_backoff_ns)
    ?(max_backoff_ns = default_policy.max_backoff_ns) () =
  if max_retries < 0 then invalid_arg "Retry.policy: max_retries < 0";
  if base_backoff_ns < 1 || max_backoff_ns < 1 then
    invalid_arg "Retry.policy: backoff bounds must be positive";
  { max_retries; base_backoff_ns; max_backoff_ns }

let backoff_ns p ~seed ~attempt =
  if attempt < 1 then invalid_arg "Retry.backoff_ns: attempt < 1";
  let shift = min (attempt - 1) 32 in
  let nominal =
    if p.base_backoff_ns > p.max_backoff_ns asr shift then p.max_backoff_ns
    else p.base_backoff_ns lsl shift
  in
  (* Perturb to [0.5x, 1.5x): the low 30 hash bits give a uniform
     fraction, deterministic in (seed, attempt). *)
  let h = Ffault_prng.Splitmix.hash (Int64.add seed (Int64.of_int (0x9E37 + attempt))) in
  let frac = Int64.to_int (Int64.logand h 0x3FFF_FFFFL) in
  let perturbed =
    int_of_float (float_of_int nominal *. (0.5 +. (float_of_int frac /. 1073741824.0)))
  in
  min p.max_backoff_ns (max 1 perturbed)

let classify p ~attempts_failed ~succeeded =
  if attempts_failed = 0 then None
  else if succeeded then Some Transient_infra
  else if attempts_failed > p.max_retries then Some Deterministic_protocol
  else None
