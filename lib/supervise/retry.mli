(** Bounded retry with seed-perturbed exponential backoff, and the
    transient-infra / deterministic-protocol failure taxonomy.

    A timed-out or crashed trial is retried up to [max_retries] times.
    Between attempts the worker backs off exponentially, with the delay
    perturbed by a hash of (seed, attempt) — deterministic given the
    trial seed, yet decorrelated across trials, so a pool of workers
    retrying the same pathological cell does not thundering-herd.

    Classification is outcome-based: a trial that eventually succeeds on
    retry failed {e transiently} (scheduling starvation, machine load —
    infrastructure, not protocol); a trial whose every attempt fails is
    {e deterministic} — the protocol genuinely livelocks or hangs under
    that cell's fault plan, and re-running it is pointless (it becomes a
    quarantine strike). *)

type classification =
  | Transient_infra  (** a retry of the same trial succeeded *)
  | Deterministic_protocol  (** every attempt failed — the trial itself is the problem *)

val pp_classification : Format.formatter -> classification -> unit
val classification_to_string : classification -> string

type policy = {
  max_retries : int;  (** extra attempts after the first failure *)
  base_backoff_ns : int;  (** nominal delay before the first retry *)
  max_backoff_ns : int;  (** exponential growth is capped here *)
}

val default_policy : policy
(** 2 retries, 1ms base, 100ms cap. *)

val policy : ?max_retries:int -> ?base_backoff_ns:int -> ?max_backoff_ns:int -> unit -> policy
(** @raise Invalid_argument on a negative [max_retries] or non-positive
    backoff bounds. *)

val backoff_ns : policy -> seed:int64 -> attempt:int -> int
(** Delay before retry [attempt] (1-based): [base · 2^(attempt-1)],
    perturbed to [0.5×..1.5×] by a hash of (seed, attempt), capped at
    [max_backoff_ns]. Pure. *)

val classify : policy -> attempts_failed:int -> succeeded:bool -> classification option
(** Judge a finished retry sequence: [None] while undecided (no failure
    at all), [Some Transient_infra] if it failed then succeeded,
    [Some Deterministic_protocol] if it burned every attempt
    ([attempts_failed > max_retries]) without success. *)
