module Metrics = Ffault_telemetry.Metrics

let m_quarantined = Metrics.counter "supervise.quarantined"

type t = { threshold : int; strikes : int Atomic.t array }

let create ?(threshold = 3) ~cells () =
  if threshold < 1 then invalid_arg "Quarantine.create: threshold < 1";
  if cells < 0 then invalid_arg "Quarantine.create: cells < 0";
  { threshold; strikes = Array.init cells (fun _ -> Atomic.make 0) }

let threshold t = t.threshold

let strike t ~cell =
  let after = Atomic.fetch_and_add t.strikes.(cell) 1 + 1 in
  (* Exactly one racing striker observes the crossing count. *)
  if after = t.threshold then Metrics.incr m_quarantined;
  if after >= t.threshold then `Degraded else `Active

let strikes t ~cell = Atomic.get t.strikes.(cell)
let degraded t ~cell = strikes t ~cell >= t.threshold

let degraded_cells t =
  let acc = ref [] in
  for c = Array.length t.strikes - 1 downto 0 do
    if degraded t ~cell:c then acc := c :: !acc
  done;
  !acc
