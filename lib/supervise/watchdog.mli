(** The watchdog: flags stuck workers and cancels their trials.

    A watchdog watches a {!Heartbeat.t}. A slot is {e stuck} once its
    last beat is older than [stall_ns] (slots that never beat are judged
    from the watchdog's creation time, so a worker wedged before its
    first beat is still caught). Each {!poll} flags newly stuck slots,
    cancels any token currently {!attach}ed to them (reason
    ["watchdog: no heartbeat for <n>ms"]) and bumps the
    [supervise.watchdog_flags] counter. A slot un-sticks by beating
    again — flagging is edge-triggered, so one stall is one flag.

    {!poll} is pure with respect to time (it reads the clock the
    heartbeat was created with), which is what the fake-clock unit tests
    drive. {!start} wraps it in a background thread for production use,
    mirroring {!Ffault_telemetry.Progress}. *)

type t

val create :
  ?clock:Ffault_runtime.Clock.t -> heartbeat:Heartbeat.t -> stall_ns:int -> unit -> t
(** [clock] defaults to the heartbeat's own clock (which is almost
    always what you want — stall judgement must read the clock beats
    are stamped with).
    @raise Invalid_argument if [stall_ns < 1]. *)

val attach : t -> slot:int -> Ffault_runtime.Cancel.t -> unit
(** Register [slot]'s current trial token; the next flagging of [slot]
    cancels it. Replaces any previous token for the slot. *)

val detach : t -> slot:int -> unit
(** Clear [slot]'s token (trial finished on its own). *)

val poll : t -> int list
(** Flag newly stuck slots: cancel their attached tokens and return
    their indices (ascending). Slots already flagged and still silent
    are not re-returned. *)

val flagged : t -> slot:int -> bool
(** Is [slot] currently flagged (stuck since its last beat)? *)

(** {2 Background thread} *)

type handle

val start : ?interval_s:float -> t -> handle
(** Poll every [interval_s] (default 0.1s) on a daemon-style thread
    until {!stop}. *)

val stop : handle -> unit
(** Idempotent; joins the thread. *)
