open Ffault_objects
open Ffault_sim
module Fault_kind = Ffault_fault.Fault_kind

let invisible_to_data trace =
  List.concat_map
    (fun ev ->
      match ev with
      | Trace.Op_step
          ({ injected = Some Fault_kind.Invisible; obj; pre_state; post_state; response; step; _ }
           as s) ->
          (* Corrupt to the (wrong) returned value, run the CAS correctly
             from there, restore the true post-state. The intermediate CAS
             is correct by construction: from state [response] it returns
             [response]. *)
          let mid =
            match Semantics.apply Kind.Cas_only ~state:response s.op with
            | Ok o -> o
            | Error _ ->
                (* invisible faults only decorate CAS steps *)
                { Semantics.post_state = response; response }
          in
          [
            Trace.Corruption { step; obj; before = pre_state; after = response };
            Trace.Op_step
              {
                s with
                pre_state = response;
                post_state = mid.Semantics.post_state;
                response = mid.Semantics.response;
                injected = None;
              };
            Trace.Corruption { step; obj; before = mid.Semantics.post_state; after = post_state };
          ]
      | other -> [ other ])
    trace

type check = { responses_preserved : bool; steps_all_correct : bool; corruptions_added : int }

let pp_check ppf c =
  Fmt.pf ppf "responses %s, steps %s, %d corruptions added"
    (if c.responses_preserved then "preserved" else "CHANGED")
    (if c.steps_all_correct then "all satisfy \xce\xa6" else "VIOLATE \xce\xa6")
    c.corruptions_added

let responses_of trace =
  List.filter_map
    (function
      | Trace.Op_step { proc; op; response; _ } -> Some (proc, op, response)
      | Trace.Hang _ | Trace.Corruption _ | Trace.Decided _ | Trace.Step_limit_hit _
      | Trace.Crashed _ | Trace.Proc_crash _ | Trace.Nvm_loss _ | Trace.Restart _ ->
          None)
    trace

let verify ~world ~original ~rewritten =
  let ra = responses_of original and rb = responses_of rewritten in
  let responses_preserved =
    List.length ra = List.length rb
    && List.for_all2
         (fun (p1, o1, r1) (p2, o2, r2) -> p1 = p2 && Op.equal o1 o2 && Value.equal r1 r2)
         ra rb
  in
  let steps_all_correct = Trace.audit ~world rewritten = [] in
  let count_corruptions t =
    List.fold_left (fun acc -> function Trace.Corruption _ -> acc + 1 | _ -> acc) 0 t
  in
  {
    responses_preserved;
    steps_all_correct;
    corruptions_added = count_corruptions rewritten - count_corruptions original;
  }
