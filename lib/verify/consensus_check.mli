(** Consensus correctness oracles (paper §2): validity, consistency and
    wait-freedom, judged on engine results.

    A {!setup} bundles a protocol instance with its fault setting; {!run}
    executes it once under a given scheduler and injector and reports
    violations. The wait-freedom judgement is operational: a process that
    exhausts the protocol's [max_steps_hint] (or the engine's total
    budget) without deciding counts as a wait-freedom violation, and a
    process swallowed by a nonresponsive fault counts likewise. *)

open Ffault_objects
open Ffault_sim
module Fault = Ffault_fault
module Consensus = Ffault_consensus

type violation =
  | Validity of { proc : int; decided : Value.t }
      (** decided a value that is no process's input *)
  | Consistency of { proc_a : int; val_a : Value.t; proc_b : int; val_b : Value.t }
      (** two processes decided differently *)
  | Wait_freedom of { proc : int; outcome : Engine.proc_outcome }
      (** a process failed to decide (step-limited, exhausted, hung, or
          crashed). {!Engine.Cancelled} is deliberately {e not} a
          violation: the harness truncated the run, so no verdict exists —
          check [result.interrupted] and report such runs as timed out,
          never as passing. *)

val pp_violation : Format.formatter -> violation -> unit

type report = {
  violations : violation list;
  result : Engine.result;
  setup_name : string;
}

val ok : report -> bool

type recover_opts = {
  crashes_per_proc : int;  (** the budget's per-process crash cap *)
  persistence : Ffault_recover.Persistence.mode;
      (** what shared state survives each crash *)
}
(** Arms crash-restart faults for a setup: every run gets a recovery
    entry (the protocol's recovery section, or its body re-run from the
    top when it declares none) and a crash dimension in its budget. *)

type setup = {
  protocol : Consensus.Protocol.t;
  params : Consensus.Protocol.params;
  inputs : Value.t array;
  allowed_faults : Fault.Fault_kind.t list;
  payload_palette : Value.t list;
  victims : Obj_id.t list option;
      (** restrict which objects may fault (defaults to any) *)
  step_slack : int;
      (** multiplier headroom over [max_steps_hint] before declaring a
          wait-freedom failure *)
  recover : recover_opts option;
      (** crash-restart faults; [None] keeps runs crash-free *)
}

val setup :
  ?inputs:Value.t array ->
  ?allowed_faults:Fault.Fault_kind.t list ->
  ?payload_palette:Value.t list ->
  ?victims:Obj_id.t list ->
  ?step_slack:int ->
  ?recover:recover_opts ->
  Consensus.Protocol.t ->
  Consensus.Protocol.params ->
  setup
(** Defaults: [Protocol.default_inputs], overriding faults only, empty
    palette, no victim restriction, slack 2, no crashes.
    @raise Invalid_argument on a negative [crashes_per_proc]. *)

val world : setup -> World.t

val engine_config : ?interrupt:(unit -> bool) -> setup -> Engine.config
(** A fresh configuration (fresh budget) for one run. [interrupt] is the
    engine's cooperative-cancellation hook (see {!Engine.config}). With a
    [recover] setting, the step budgets scale by [1 + crashes_per_proc] —
    a restarted incarnation must not trip a spurious wait-freedom
    Exhausted — and the budget carries the crash cap. *)

val check_result : setup -> Engine.result -> violation list
(** Judge a finished run. *)

val run :
  ?interrupt:(unit -> bool) ->
  setup ->
  scheduler:Scheduler.t ->
  injector:Fault.Injector.t ->
  ?data_faults:Fault.Data_fault.t ->
  unit ->
  report

val run_with_driver : ?interrupt:(unit -> bool) -> setup -> Engine.driver -> report
