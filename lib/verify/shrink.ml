(* Every shrink candidate costs one full replay; the counter makes
   shrink explosions (a hopeless cell minimizing forever) visible in
   campaign telemetry. *)
let m_replays = Ffault_telemetry.Metrics.counter "shrink.iterations"

let violates setup decisions =
  Ffault_telemetry.Metrics.incr m_replays;
  not (Consensus_check.ok (Dfs.replay setup decisions))

let truncate_zeros decisions =
  (* trailing zeros are semantically absent — drop them outright *)
  let n = ref (Array.length decisions) in
  while !n > 0 && decisions.(!n - 1) = 0 do
    decr n
  done;
  Array.sub decisions 0 !n

let witness setup decisions =
  if not (violates setup decisions) then
    invalid_arg "Shrink.witness: input vector does not violate";
  let current = ref (truncate_zeros decisions) in
  let changed = ref true in
  while !changed do
    changed := false;
    (* (1) drop trailing entries *)
    let continue_chop = ref true in
    while !continue_chop && Array.length !current > 0 do
      let candidate = Array.sub !current 0 (Array.length !current - 1) in
      if violates setup candidate then begin
        current := truncate_zeros candidate;
        changed := true
      end
      else continue_chop := false
    done;
    (* (2) zero, then (3) decrement, each entry; [current] may shrink
       mid-loop via truncation, so re-check the index each time *)
    let n = Array.length !current in
    for i = 0 to n - 1 do
      if i < Array.length !current && !current.(i) > 0 then begin
        let zeroed = Array.copy !current in
        zeroed.(i) <- 0;
        if violates setup zeroed then begin
          current := truncate_zeros zeroed;
          changed := true
        end
        else begin
          let dec = Array.copy !current in
          dec.(i) <- dec.(i) - 1;
          if violates setup dec then begin
            current := truncate_zeros dec;
            changed := true
          end
        end
      end
    done
  done;
  !current

let witness_report setup decisions =
  let d = witness setup decisions in
  (d, Dfs.replay setup d)
