open Ffault_objects
open Ffault_sim
module Fault = Ffault_fault
module Consensus = Ffault_consensus
module Protocol = Consensus.Protocol
module Persistence = Ffault_recover.Persistence

type violation =
  | Validity of { proc : int; decided : Value.t }
  | Consistency of { proc_a : int; val_a : Value.t; proc_b : int; val_b : Value.t }
  | Wait_freedom of { proc : int; outcome : Engine.proc_outcome }

let pp_violation ppf = function
  | Validity { proc; decided } ->
      Fmt.pf ppf "validity: p%d decided %a, which is no process's input" proc Value.pp decided
  | Consistency { proc_a; val_a; proc_b; val_b } ->
      Fmt.pf ppf "consistency: p%d decided %a but p%d decided %a" proc_a Value.pp val_a proc_b
        Value.pp val_b
  | Wait_freedom { proc; outcome } ->
      Fmt.pf ppf "wait-freedom: p%d did not decide (%a)" proc Engine.pp_proc_outcome outcome

type report = { violations : violation list; result : Engine.result; setup_name : string }

let ok r = r.violations = []

type recover_opts = { crashes_per_proc : int; persistence : Persistence.mode }

type setup = {
  protocol : Protocol.t;
  params : Protocol.params;
  inputs : Value.t array;
  allowed_faults : Fault.Fault_kind.t list;
  payload_palette : Value.t list;
  victims : Obj_id.t list option;
  step_slack : int;
  recover : recover_opts option;
}

let setup ?inputs ?(allowed_faults = [ Fault.Fault_kind.Overriding ]) ?(payload_palette = [])
    ?victims ?(step_slack = 2) ?recover protocol params =
  let inputs = match inputs with Some i -> i | None -> Protocol.default_inputs params in
  if Array.length inputs <> params.Protocol.n_procs then
    invalid_arg "Consensus_check.setup: inputs count differs from n_procs";
  (match recover with
  | Some { crashes_per_proc; _ } when crashes_per_proc < 0 ->
      invalid_arg "Consensus_check.setup: crashes_per_proc < 0"
  | _ -> ());
  { protocol; params; inputs; allowed_faults; payload_palette; victims; step_slack; recover }

let crashes_per_proc s =
  match s.recover with None -> 0 | Some r -> r.crashes_per_proc

let persistence s =
  match s.recover with None -> Persistence.Persist_all | Some r -> r.persistence

let world s = Protocol.world s.protocol s.params

let budget s =
  Fault.Budget.create ?victims:s.victims ~max_crashes_per_proc:(crashes_per_proc s)
    ~max_faulty_objects:s.params.Protocol.f ~max_faults_per_object:s.params.Protocol.t ()

let engine_config ?interrupt s =
  let hint = s.protocol.Protocol.max_steps_hint s.params in
  (* Each crash-restart re-runs up to a full incarnation, so the
     wait-freedom budget scales with the crash cap: a restart must never
     read as a spurious Exhausted. *)
  let per_proc = s.step_slack * hint * (1 + crashes_per_proc s) in
  Engine.config ~allowed_faults:s.allowed_faults ~payload_palette:s.payload_palette
    ~max_steps_per_proc:per_proc
    ~max_total_steps:(per_proc * s.params.Protocol.n_procs)
    ?interrupt ~persistence:(persistence s) ~world:(world s) ~budget:(budget s) ()

let check_result s (r : Engine.result) =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  Array.iteri
    (fun proc outcome ->
      match outcome with
      | Engine.Decided v ->
          if not (Array.exists (Value.equal v) s.inputs) then add (Validity { proc; decided = v })
      | Engine.Hung | Engine.Exhausted _ | Engine.Step_limited | Engine.Crashed _ ->
          add (Wait_freedom { proc; outcome })
      | Engine.Cancelled ->
          (* The harness truncated the run (deadline/watchdog), so no
             verdict can be drawn about the protocol: not a violation.
             Callers must consult [result.interrupted] and report the run
             as timed out, never as passing. *)
          ())
    r.Engine.outcomes;
  (match Engine.decided_values r with
  | [] | [ _ ] -> ()
  | (proc_a, val_a) :: rest ->
      List.iter
        (fun (proc_b, val_b) ->
          if not (Value.equal val_a val_b) then
            add (Consistency { proc_a; val_a; proc_b; val_b }))
        rest);
  List.rev !violations

let setup_name s = Fmt.str "%s %a" s.protocol.Protocol.name Protocol.pp_params s.params

let recovery_of s =
  if crashes_per_proc s = 0 then None
  else Some (Protocol.recovery_bodies s.protocol s.params ~inputs:s.inputs)

let run ?interrupt s ~scheduler ~injector ?data_faults () =
  let cfg = engine_config ?interrupt s in
  let bodies = Protocol.bodies s.protocol s.params ~inputs:s.inputs in
  let result = Engine.run cfg ~scheduler ~injector ?data_faults ~bodies () in
  { violations = check_result s result; result; setup_name = setup_name s }

let run_with_driver ?interrupt s driver =
  let cfg = engine_config ?interrupt s in
  let bodies = Protocol.bodies s.protocol s.params ~inputs:s.inputs in
  let result = Engine.run_with_driver ?recovery:(recovery_of s) cfg driver ~bodies in
  { violations = check_result s result; result; setup_name = setup_name s }
