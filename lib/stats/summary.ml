module Splitmix = Ffault_prng.Splitmix

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  capacity : int;
  rng : Splitmix.t;  (* reservoir replacement decisions; deterministic *)
  mutable reservoir : float array;  (* grows geometrically up to capacity *)
  mutable filled : int;
  mutable sorted : float array option;  (* cache, invalidated by add *)
}

let default_capacity = 65_536

let create ?(capacity = default_capacity) ?(seed = 0x5EEDL) () =
  if capacity < 1 then invalid_arg "Summary.create: capacity < 1";
  {
    n = 0;
    mean = 0.0;
    m2 = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
    capacity;
    rng = Splitmix.create seed;
    reservoir = [||];
    filled = 0;
    sorted = None;
  }

let add s x =
  s.n <- s.n + 1;
  let delta = x -. s.mean in
  s.mean <- s.mean +. (delta /. float_of_int s.n);
  s.m2 <- s.m2 +. (delta *. (x -. s.mean));
  if x < s.min_v then s.min_v <- x;
  if x > s.max_v then s.max_v <- x;
  (* Vitter's algorithm R: keep a uniform sample of capacity elements. *)
  if s.filled < s.capacity then begin
    if s.filled >= Array.length s.reservoir then begin
      let grown =
        Array.make (min s.capacity (max 64 (2 * Array.length s.reservoir))) 0.0
      in
      Array.blit s.reservoir 0 grown 0 s.filled;
      s.reservoir <- grown
    end;
    s.reservoir.(s.filled) <- x;
    s.filled <- s.filled + 1;
    s.sorted <- None
  end
  else begin
    let j = Splitmix.next_int s.rng ~bound:s.n in
    if j < s.capacity then begin
      s.reservoir.(j) <- x;
      s.sorted <- None
    end
  end

let add_int s x = add s (float_of_int x)

let count s = s.n
let capacity s = s.capacity
let retained s = s.filled
let mean s = if s.n = 0 then 0.0 else s.mean
let variance s = if s.n < 2 then 0.0 else s.m2 /. float_of_int (s.n - 1)
let stddev s = sqrt (variance s)
let min_value s = s.min_v
let max_value s = s.max_v

let sorted s =
  match s.sorted with
  | Some a -> a
  | None ->
      let a = Array.sub s.reservoir 0 s.filled in
      Array.sort Float.compare a;
      s.sorted <- Some a;
      a

let percentile s p =
  if s.n = 0 then invalid_arg "Summary.percentile: empty accumulator";
  if p < 0.0 || p > 100.0 then invalid_arg "Summary.percentile: p out of [0, 100]";
  let a = sorted s in
  let rank = p /. 100.0 *. float_of_int (Array.length a - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  if lo = hi then a.(lo)
  else
    let w = rank -. float_of_int lo in
    (a.(lo) *. (1.0 -. w)) +. (a.(hi) *. w)

let pp ppf s =
  if s.n = 0 then Fmt.string ppf "n=0"
  else
    Fmt.pf ppf "n=%d, mean=%.2f, sd=%.2f, min=%.0f, p50=%.0f, p99=%.0f, max=%.0f" s.n (mean s)
      (stddev s) (min_value s) (percentile s 50.0) (percentile s 99.0) (max_value s)
