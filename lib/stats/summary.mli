(** Streaming summary statistics (Welford) and percentile estimation
    over a capped reservoir.

    Used by the experiment driver, the campaign reports and the benches
    to aggregate per-run measurements (step counts, stage counts,
    latencies). Count, mean, variance, min and max are always {e exact}
    regardless of stream length. Percentiles are computed over a uniform
    reservoir sample (Vitter's algorithm R, deterministic seeded
    replacement): exact while the stream fits the capacity (default
    65 536 samples), an unbiased estimate beyond it — so million-trial
    campaigns aggregate in O(capacity) memory instead of retaining every
    sample. *)

type t
(** A mutable accumulator. *)

val default_capacity : int
(** 65 536. *)

val create : ?capacity:int -> ?seed:int64 -> unit -> t
(** [create ()] uses {!default_capacity} and a fixed seed (equal streams
    give equal estimates).
    @raise Invalid_argument if [capacity < 1]. *)

val add : t -> float -> unit
val add_int : t -> int -> unit

val count : t -> int
(** Samples observed (not retained). *)

val capacity : t -> int
val retained : t -> int
(** Samples currently in the reservoir: [min (count s) (capacity s)]. *)

val mean : t -> float
(** 0 when empty. Exact. *)

val variance : t -> float
(** Sample variance (n - 1 denominator); 0 for fewer than two samples.
    Exact. *)

val stddev : t -> float
val min_value : t -> float
(** [infinity] when empty. Exact. *)

val max_value : t -> float
(** [neg_infinity] when empty. Exact. *)

val percentile : t -> float -> float
(** [percentile s p] for p in [\[0, 100\]], by linear interpolation over
    the retained reservoir. Exact when [count s <= capacity s]; a
    sampling estimate otherwise (the estimator change from the
    retain-everything original — min/max remain exact, so p0/p100 of a
    long stream may differ slightly from {!min_value}/{!max_value}).
    @raise Invalid_argument if empty or p out of range. *)

val pp : Format.formatter -> t -> unit
(** "n=…, mean=…, sd=…, min=…, p50=…, p99=…, max=…". *)
