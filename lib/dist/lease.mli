(** The coordinator's lease table: the trial grid sharded into ranges,
    each leased to at most one worker at a time.

    A lease is a contiguous trial-id range [\[lo, hi)] with a fresh id
    per grant. Grants record the monotonic clock; a lease not renewed
    (by any frame from its owner) within [timeout_ns] {e expires} — its
    shard goes back on the queue and the next {!grant} re-issues it
    under a new lease id, so a zombie worker still streaming under the
    old id is recognizable ({!complete} on a stale id is [`Unknown]).

    The table is {e not} the source of truth for campaign completion —
    the journal is. A shard is only retired when the coordinator has
    journaled all its trials and calls {!complete}; {!fail} and
    {!expire} merely make shards grantable again, and duplicated work is
    deduped downstream by trial id. Crash-recovery discipline after
    Golab's recoverable-consensus model: re-execution is allowed,
    re-{e journaling} is not.

    Single-threaded (the coordinator's event loop); timestamps come
    from {!Ffault_runtime.Clock.monotonic} unless another clock (a
    virtual one, in tests and netsim) is injected. *)

type lease = { id : int; shard : int; lo : int; hi : int }

type t

val create :
  ?clock:Ffault_runtime.Clock.t ->
  total:int ->
  lease_trials:int ->
  timeout_ns:int ->
  unit ->
  t
(** Shard [\[0, total)] into ⌈total / lease_trials⌉ ranges. [clock]
    defaults to {!Ffault_runtime.Clock.monotonic}.
    @raise Invalid_argument if [total < 0], [lease_trials < 1] or
    [timeout_ns < 1]. *)

val n_shards : t -> int

val shard_range : t -> int -> int * int
(** [\[lo, hi)] of a shard index. *)

val retire : t -> shard:int -> unit
(** Mark [shard] done without a lease — the recovery path of a
    restarted coordinator, which proves completion from the journal
    rather than from a [Complete] frame. Does not touch the completion
    counters (no lease was granted in this incarnation).
    @raise Invalid_argument on a shard outside [\[0, n_shards)]. *)

val grant : t -> owner:string -> lease option
(** Lease the next free shard to [owner]; [None] if every shard is
    currently leased or retired. *)

val renew : t -> owner:string -> unit
(** Refresh the expiry clock of every lease [owner] holds (called on
    any frame from that worker — traffic is liveness). *)

val find : t -> id:int -> lease option
(** The outstanding lease [id], if it is still live. *)

val complete : t -> id:int -> [ `Completed of lease | `Unknown ]
(** Retire the shard behind lease [id]. [`Unknown] if [id] is not
    outstanding — a stale lease that already expired and was re-issued;
    the caller ignores it (the re-lease owns the shard now). *)

val revoke : t -> id:int -> lease option
(** Requeue lease [id] without retiring its shard (a worker completed
    it with trials missing from the journal — misbehaving, so take the
    shard back). [None] if not outstanding. *)

val fail : t -> owner:string -> lease list
(** Requeue every lease [owner] holds (worker died or disconnected).
    Returns what was requeued. *)

val expire : t -> (string * lease) list
(** Requeue every outstanding lease past its timeout; returns them with
    their former owners. Called once per event-loop tick. *)

val live : t -> (string * lease) list
(** Every outstanding lease with its owner (shutdown sweep: the
    coordinator retires fully-journaled leases whose [Complete] frame
    is still in flight when the campaign finishes). *)

val outstanding : t -> int
val pending : t -> int
(** Shards queued for (re-)grant. *)

val is_done : t -> bool
(** Every shard retired. *)

(** {2 Counters} (lifetime totals, for [workers.json] / telemetry) *)

val granted_total : t -> int
val completed_total : t -> int
val expired_total : t -> int
