(** Typed messages of the coordinator/worker protocol and their
    {!Wire.frame} encoding.

    Payloads are {!Ffault_campaign.Json} objects, reusing the campaign's
    spec and journal-record serializers verbatim — a [Result] frame
    carries exactly the JSONL line the coordinator will journal. Every
    decoder is total: an unknown tag or malformed payload is an
    [Error], never an exception (the fuzz tests in [test_dist]
    hold this). *)

module Json = Ffault_campaign.Json
module Spec = Ffault_campaign.Spec
module Journal = Ffault_campaign.Journal

(** The supervision settings a coordinator imposes on its workers —
    the wire form of {!Ffault_campaign.Pool.supervision}. *)
type supervision = {
  deadline_s : float option;
  max_retries : int;
  quarantine_after : int;
  adaptive_deadline : bool;
}

val no_supervision : supervision

type msg =
  | Hello of { version : int; name : string; domains : int; last_epoch : int }
      (** worker → coordinator, first frame of a connection.
          [last_epoch] is the coordinator incarnation the worker last
          spoke to (0 on a first connect), so a restarted coordinator
          can tell a returning worker from a fresh one. *)
  | Welcome of {
      version : int;
      epoch : int;  (** this coordinator incarnation (from [owner.json]) *)
      spec : Spec.t;
      supervision : supervision;
      hb_interval_s : float;  (** how often the worker must heartbeat *)
    }  (** coordinator → worker, accepting the hello *)
  | Request  (** worker → coordinator: give me a lease *)
  | Lease of { lease : int; epoch : int; lo : int; hi : int; done_ids : int list }
      (** coordinator → worker: run trials [\[lo, hi)] minus [done_ids]
          (already journaled — set on re-leases after a worker death).
          [epoch] is the granting incarnation; the worker echoes it on
          the matching [Complete] so a post-restart coordinator can
          fence grants it never made. *)
  | Result of Journal.record  (** worker → coordinator, one per trial *)
  | Complete of { lease : int; epoch : int }
      (** worker → coordinator: lease finished. [epoch] is the grant's
          epoch, not the current one — a [Complete] whose epoch is not
          the coordinator's own incarnation is fenced (the journal, not
          a stale incarnation's bookkeeping, decides the shard's fate).
          Epoch fields are optional on the wire and default to 0, so
          pre-failover frames still decode. *)
  | Heartbeat of { snapshot : Json.t option; spans : Json.t option }
      (** worker → coordinator, liveness while a lease runs. New workers
          piggyback a telemetry snapshot ({!Ffault_campaign.Telemetry_io}
          shape) and a Chrome-span batch on the beat; both fields are
          optional on the wire, so a pre-observability worker's bare
          beat ([{}]) still decodes and a new worker's beat is ignored
          gracefully by an old coordinator. *)
  | Wait of { seconds : float }
      (** coordinator → worker: no shard free right now (all leased),
          ask again after [seconds] *)
  | Bye of { reason : string }  (** either direction, terminal *)

val heartbeat : msg
(** The bare liveness beat: [Heartbeat] with neither snapshot nor
    spans — encodes byte-identically to the legacy frame. *)

val to_frame : msg -> Wire.frame
val of_frame : Wire.frame -> (msg, string) result

val pp : Format.formatter -> msg -> unit
(** One-line rendering for logs (records and specs elided). *)
