(* A deliberately tiny HTTP/1.0 server and client — just enough to
   scrape the coordinator's read-only status endpoint with curl or the
   [campaign status] CLI, with no dependency beyond Unix.

   Server model: the coordinator's select loop owns the fds. We expose
   them ([fds]), it tells us which became readable ([handle]), we
   accept/read/respond/close. One request per connection (we always
   answer [Connection: close]), GET only, responses written with a
   short blocking send — bodies are a few KB of JSON, peers are
   operators on the same host or LAN. *)

type pending = { p_fd : Unix.file_descr; p_buf : Buffer.t }

type server = {
  s_fd : Unix.file_descr;
  s_path : string option;  (* unix-socket path, unlinked on close *)
  pendings : (Unix.file_descr, pending) Hashtbl.t;
  mutable s_closed : bool;
}

type response = Status.response = { code : int; content_type : string; body : string }

let max_request_bytes = 8192

let listen ?(backlog = 16) endpoint =
  match Transport.sockaddr_of endpoint with
  | Error _ as e -> e
  | Ok addr -> (
      (match endpoint with
      | Transport.Unix_sock path when Sys.file_exists path -> (
          try Unix.unlink path with Unix.Unix_error _ -> ())
      | _ -> ());
      let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
      try
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd addr;
        Unix.listen fd backlog;
        Ok
          {
            s_fd = fd;
            s_path =
              (match endpoint with
              | Transport.Unix_sock p -> Some p
              | Transport.Tcp _ -> None);
            pendings = Hashtbl.create 8;
            s_closed = false;
          }
      with Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error
          (Printf.sprintf "http: listen on %s: %s"
             (Transport.endpoint_to_string endpoint)
             (Unix.error_message e)))

let fds t =
  if t.s_closed then []
  else t.s_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) t.pendings []

let owns t fd = fd = t.s_fd || Hashtbl.mem t.pendings fd

let drop t (p : pending) =
  Hashtbl.remove t.pendings p.p_fd;
  try Unix.close p.p_fd with Unix.Unix_error _ -> ()

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | _ -> "Error"

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | 0 -> ()
      | n -> go (off + n)
      | exception Unix.Unix_error _ -> ()
  in
  go 0

let send_response fd (r : response) =
  write_all fd
    (Printf.sprintf
       "HTTP/1.0 %d %s\r\ncontent-type: %s\r\ncontent-length: %d\r\nconnection: \
        close\r\n\r\n%s"
       r.code (status_text r.code) r.content_type (String.length r.body) r.body)

(* The request line up to the first CRLF (or LF): "GET /path HTTP/1.x".
   Returns [None] until a full line is buffered. *)
let request_path buf =
  let s = Buffer.contents buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
      let line = String.sub s 0 i in
      let line =
        if line <> "" && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Some
        (match String.split_on_char ' ' line with
        | [ "GET"; path; _ ] | [ "GET"; path ] -> Ok path
        | verb :: _ -> Error (`Bad_method verb)
        | [] -> Error (`Bad_method ""))

let handle_pending t respond (p : pending) =
  let chunk = Bytes.create 1024 in
  match Unix.read p.p_fd chunk 0 (Bytes.length chunk) with
  | 0 -> drop t p
  | exception Unix.Unix_error _ -> drop t p
  | n -> (
      Buffer.add_subbytes p.p_buf chunk 0 n;
      (* respond as soon as the request line is in — we never read a
         body, and waiting for the full header block buys nothing *)
      match request_path p.p_buf with
      | None ->
          if Buffer.length p.p_buf > max_request_bytes then begin
            send_response p.p_fd
              {
                code = 400;
                content_type = "text/plain";
                body = "request too large\n";
              };
            drop t p
          end
      | Some (Ok path) ->
          send_response p.p_fd (respond path);
          drop t p
      | Some (Error (`Bad_method verb)) ->
          send_response p.p_fd
            {
              code = 405;
              content_type = "text/plain";
              body = Printf.sprintf "method %S not allowed (GET only)\n" verb;
            };
          drop t p)

let handle t ~readable ~respond =
  if not t.s_closed then
    List.iter
      (fun fd ->
        if fd = t.s_fd then (
          match Unix.accept t.s_fd with
          | cfd, _ ->
              Hashtbl.replace t.pendings cfd { p_fd = cfd; p_buf = Buffer.create 128 }
          | exception Unix.Unix_error _ -> ())
        else
          match Hashtbl.find_opt t.pendings fd with
          | Some p -> handle_pending t respond p
          | None -> ())
      readable

let close t =
  if not t.s_closed then begin
    t.s_closed <- true;
    Hashtbl.iter (fun _ p -> try Unix.close p.p_fd with Unix.Unix_error _ -> ()) t.pendings;
    Hashtbl.reset t.pendings;
    (try Unix.close t.s_fd with Unix.Unix_error _ -> ());
    match t.s_path with
    | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | None -> ()
  end

(* ---- client ---- *)

let read_to_eof fd =
  let b = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents b
    | n ->
        Buffer.add_subbytes b chunk 0 n;
        go ()
    | exception Unix.Unix_error _ -> Buffer.contents b
  in
  go ()

let split_once raw ~sep =
  let n = String.length raw and m = String.length sep in
  let rec find i =
    if i + m > n then None
    else if String.sub raw i m = sep then
      Some (String.sub raw 0 i, String.sub raw (i + m) (n - i - m))
    else find (i + 1)
  in
  find 0

let parse_response raw =
  match split_once raw ~sep:"\r\n\r\n" with
  | None -> Error "http: malformed response (no header terminator)"
  | Some (head, body) -> (
      let lines = String.split_on_char '\n' head in
      match lines with
      | status :: rest -> (
          match String.split_on_char ' ' status with
          | _ :: code :: _ -> (
              match int_of_string_opt code with
              | None -> Error (Printf.sprintf "http: bad status line %S" status)
              | Some code ->
                  let content_type =
                    List.fold_left
                      (fun acc line ->
                        let line = String.trim line in
                        match String.index_opt line ':' with
                        | Some i
                          when String.lowercase_ascii (String.sub line 0 i)
                               = "content-type" ->
                            String.trim
                              (String.sub line (i + 1) (String.length line - i - 1))
                        | _ -> acc)
                      "application/octet-stream" rest
                  in
                  Ok { code; content_type; body })
          | _ -> Error (Printf.sprintf "http: bad status line %S" status))
      | [] -> Error "http: empty response")

let get endpoint ~path =
  match Transport.sockaddr_of endpoint with
  | Error _ as e -> e
  | Ok addr -> (
      let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
      let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
      Fun.protect ~finally (fun () ->
          match Unix.connect fd addr with
          | () ->
              write_all fd
                (Printf.sprintf "GET %s HTTP/1.0\r\nconnection: close\r\n\r\n" path);
              parse_response (read_to_eof fd)
          | exception Unix.Unix_error (e, _, _) ->
              Error
                (Printf.sprintf "http: connect %s: %s"
                   (Transport.endpoint_to_string endpoint)
                   (Unix.error_message e))))
