(** Response building for the coordinator's read-only status endpoint —
    transport-free.

    {!Http} moves bytes; this module decides them. Everything here is a
    pure function of a {!Core.view}, an event tail, and a metrics
    exposition, so the netsim driver can probe the very same responses
    under virtual time and golden-test them byte-for-byte (no pids, no
    wall-clock, no socket addresses sneak in). *)

(** Where responses read their data. [view] is {!Core.view} partially
    applied to the engine; [events] tails the coordinator's
    {!Ffault_telemetry.Events} log; [metrics] is
    {!Ffault_telemetry.Metrics.expose} (or a pinned exposition in
    tests). *)
type source = {
  view : unit -> Core.view;
  events : limit:int -> Ffault_telemetry.Events.event list;
  metrics : unit -> string;
}

type response = { code : int; content_type : string; body : string }

val events_limit : int
(** Newest events served by [/events] (256). *)

val status_json : Core.view -> Ffault_campaign.Json.t
(** The [/status] document: campaign identity, progress counts,
    [elapsed_s]/[trials_per_s]/[eta_s] ([eta_s] is [null] when done or
    rate-less), connected workers, and the lease table totals. *)

val workers_json : Core.view -> Ffault_campaign.Json.t
(** The [/workers] document: per-worker rows (name-sorted, disconnected
    workers included) with [connected], [hb_age_s] ([null] before any
    frame), and [stale] — heartbeat age above twice the heartbeat
    interval, judged by age alone so a killed worker is flagged whether
    or not its socket has EOFed yet. *)

val respond : source -> string -> response
(** Dispatch a request path ([/status], [/workers], [/metrics],
    [/events]; [/] aliases [/status]; query strings ignored) to its
    response. Unknown paths get a 404 JSON body listing the
    endpoints. *)
