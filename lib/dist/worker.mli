(** The distributed-campaign worker: [ffault worker].

    A worker owns no campaign state. It connects to a coordinator,
    introduces itself ([Hello]), learns the spec and supervision
    settings from the [Welcome], then loops: request a lease, run its
    trial range through the ordinary in-memory engine
    ({!Ffault_campaign.Pool.run_trials} — domains, deadlines, retries,
    quarantine and adaptive deadlines all behave exactly as in a local
    run), stream one [Result] frame per record, and send [Complete].
    [Wait] backs it off when every shard is leased; [Bye] (or a closed
    socket once the campaign is done) ends it.

    {b Reconnection.} A lost connection — including a coordinator that
    crashed and is restarting — does not kill the worker. It retries
    the connect under a bounded {!Ffault_supervise.Retry} backoff
    schedule (seeded by the worker name, so a fleet does not
    thundering-herd), re-[Hello]s carrying the last coordinator epoch
    it saw, and resumes requesting leases. A lease that was in flight
    when the connection died is {e not} re-executed: its records were
    produced locally and are replayed to the new connection together
    with its [Complete] under the original grant epoch — the
    coordinator dedups the records by trial id and fences a stale-epoch
    [Complete], so at most bookkeeping (never trials) is redone.
    Consecutive failures beyond the policy's [max_retries] end the
    worker with an error.

    A background thread heartbeats at the cadence the [Welcome]
    dictates, so a worker grinding through a slow trial range never
    looks dead to the coordinator's watchdog. Results are sent from the
    engine's serialized [on_record] path and heartbeats from the
    thread; the connection's send mutex interleaves them safely.

    Each beat piggybacks this process's telemetry snapshot and — when
    {!Ffault_telemetry.Tracer} is enabled — the span events recorded
    since the last beat, so the coordinator can aggregate fleet-wide
    metrics and a cross-process trace without any extra connection. A
    final flush beat precedes every [Complete], catching the tail of
    the last lease.

    Workers are deliberately crash-oblivious: they journal nothing and
    resume nothing. If one dies mid-lease, the coordinator re-leases the
    shard with the journaled trial ids excluded — the exactly-once
    guarantee lives entirely on the coordinator side. *)

type config = {
  endpoint : Transport.endpoint;
  name : string;  (** identity shown in the coordinator's Workers report *)
  domains : int;  (** engine domains for each lease *)
  chunk : int;  (** work-stealing chunk, as in [Pool.run_trials] *)
}

val config : ?name:string -> ?domains:int -> ?chunk:int -> Transport.endpoint -> config
(** Default name [<hostname>-<pid>], 1 domain, chunk 64.
    @raise Invalid_argument if [domains < 1] or [chunk < 1]. *)

val default_retry : Ffault_supervise.Retry.policy
(** The default (re)connect backoff: 8 retries, 250 ms base, 5 s cap —
    sized to ride out a coordinator crash plus restart. *)

(** The worker side of the protocol as pure frame classification,
    shared by this blocking socket driver and the netsim worker actor
    (so the simulated worker cannot drift from the real one). *)
module Protocol : sig
  type welcome = {
    epoch : int;  (** the coordinator incarnation granting from here on *)
    spec : Ffault_campaign.Spec.t;
    supervision : Codec.supervision;
    hb_interval_s : float;
  }

  val hello : name:string -> domains:int -> last_epoch:int -> Codec.msg
  (** The [Hello] carrying {!Wire.version} and the last coordinator
      epoch this worker saw (0 before any [Welcome]). *)

  val welcome_reply : Codec.msg -> (welcome, string) result
  (** Classify the reply to [Hello]: a matching-version [Welcome], or
      the error to stop with (version mismatch, [Bye], junk). *)

  type reply =
    | Granted of { lease : int; epoch : int; lo : int; hi : int; done_ids : int list }
        (** [epoch] is the grant's fencing token, echoed on [Complete] *)
    | Backoff of float  (** [Wait]: retry the request after this many seconds *)
    | Stop of string  (** [Bye]: campaign over *)
    | Ignore  (** a stray [Heartbeat]: tolerated, request again *)
    | Unexpected of string

  val lease_reply : Codec.msg -> reply
  (** Classify the reply to [Request]. *)

  val ids_to_run : lo:int -> hi:int -> done_ids:int list -> int list
  (** The trial ids of a lease still needing execution, ascending —
      [\[lo, hi)] minus the already-journaled [done_ids]. *)
end

type summary = {
  leases_run : int;
  trials_run : int;  (** records streamed (excludes [done_ids] skips) *)
  trials_skipped : int;  (** [done_ids] on re-leases — already journaled *)
  reconnects : int;  (** established sessions lost and re-established *)
  stop_reason : string;  (** the coordinator's [Bye] reason, or the error *)
}

val run :
  ?on_event:(string -> unit) ->
  ?on_warn:(string -> unit) ->
  ?retry:Ffault_supervise.Retry.policy ->
  ?trace_path:string ->
  config ->
  (summary, string) result
(** Serve leases until the coordinator says [Bye] (normal completion,
    [Ok]) or the connect/reconnect budget is exhausted ([Error]).
    [on_event] receives one-line lease lifecycle messages; [on_warn]
    receives connection-trouble messages (failed connects, lost
    sessions) with the scheduled retry. [retry] bounds the backoff
    schedule ({!default_retry} if omitted). [trace_path] additionally
    writes this worker's own spans as a standalone Chrome trace on exit
    (requires the tracer enabled to record anything). *)
