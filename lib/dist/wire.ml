let version = 1
let max_frame_bytes = 16 * 1024 * 1024

type frame = { tag : char; payload : string }

let encode { tag; payload } =
  let body_len = 1 + String.length payload in
  if body_len > max_frame_bytes then
    invalid_arg "Wire.encode: payload exceeds max_frame_bytes";
  let b = Bytes.create (4 + body_len) in
  Bytes.set_int32_be b 0 (Int32.of_int body_len);
  Bytes.set b 4 tag;
  Bytes.blit_string payload 0 b 5 (String.length payload);
  Bytes.unsafe_to_string b

module Decoder = struct
  type t = {
    buf : Buffer.t;
    mutable pos : int;  (* consumed prefix of [buf] *)
    mutable poisoned : string option;
  }

  let create () = { buf = Buffer.create 4096; pos = 0; poisoned = None }

  let feed t s = if t.poisoned = None then Buffer.add_string t.buf s

  let available t = Buffer.length t.buf - t.pos

  (* Shift out the consumed prefix once it dominates the buffer, so a
     long-lived connection doesn't grow its buffer without bound. *)
  let compact t =
    if t.pos > 65_536 && t.pos * 2 > Buffer.length t.buf then begin
      let rest = Buffer.sub t.buf t.pos (available t) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.pos <- 0
    end

  let poison t msg =
    t.poisoned <- Some msg;
    Buffer.clear t.buf;
    t.pos <- 0;
    Error msg

  let next t =
    match t.poisoned with
    | Some m -> Error m
    | None ->
        if available t < 4 then Ok None
        else
          let byte i = Char.code (Buffer.nth t.buf (t.pos + i)) in
          (* big-endian, reconstructed by hand so a length with the top
             bit set reads as negative (and is rejected) rather than
             wrapping into a plausible size on 64-bit ints *)
          let len =
            Int32.to_int
              (Int32.logor
                 (Int32.shift_left (Int32.of_int (byte 0)) 24)
                 (Int32.of_int ((byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3)))
          in
          if len < 1 then poison t "wire: zero-length frame"
          else if len > max_frame_bytes then
            poison t (Printf.sprintf "wire: oversized frame (%d bytes)" len)
          else if available t < 4 + len then Ok None
          else begin
            let tag = Buffer.nth t.buf (t.pos + 4) in
            let payload = Buffer.sub t.buf (t.pos + 5) (len - 1) in
            t.pos <- t.pos + 4 + len;
            compact t;
            Ok (Some { tag; payload })
          end

  let buffered = available
end
