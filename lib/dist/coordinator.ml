module Campaign = Ffault_campaign
module Json = Campaign.Json
module Journal = Campaign.Journal
module Checkpoint = Campaign.Checkpoint
module Pool = Campaign.Pool
module Metrics = Ffault_telemetry.Metrics
module Events = Ffault_telemetry.Events

type config = {
  endpoint : Transport.endpoint;
  lease_trials : int;
  lease_timeout_s : float;
  hb_interval_s : float;
  max_workers : int;
  supervision : Codec.supervision;
}

let config ?(lease_trials = 1000) ?(lease_timeout_s = 30.0) ?(hb_interval_s = 2.0)
    ?(max_workers = 64) ?(supervision = Codec.no_supervision) endpoint =
  if lease_trials < 1 then invalid_arg "Coordinator.config: lease_trials < 1";
  if (not (Float.is_finite lease_timeout_s)) || lease_timeout_s <= 0.0 then
    invalid_arg "Coordinator.config: lease_timeout_s must be finite and positive";
  if (not (Float.is_finite hb_interval_s)) || hb_interval_s <= 0.0 then
    invalid_arg "Coordinator.config: hb_interval_s must be finite and positive";
  if hb_interval_s >= lease_timeout_s then
    invalid_arg "Coordinator.config: heartbeat interval must be under the lease timeout";
  if max_workers < 1 then invalid_arg "Coordinator.config: max_workers < 1";
  { endpoint; lease_trials; lease_timeout_s; hb_interval_s; max_workers; supervision }

type worker_stats = Core.worker_stats = {
  w_name : string;
  w_peer : string;
  w_domains : int;
  w_granted : int;
  w_completed : int;
  w_expired : int;
  w_results : int;
  w_deduped : int;
  w_reconnects : int;
  w_telemetry : Json.t option;
}

type summary = Core.summary = {
  pool : Pool.summary;
  workers : worker_stats list;
  epoch : int;
  leases_granted : int;
  leases_completed : int;
  leases_expired : int;
  worker_spans : (string * Json.t list) list;
}

let workers_json = Core.workers_json

(* Engine events are plain strings; grade them for the structured log
   by the trouble words the messages are built from (lease expiry,
   reclaim, holes, drops). Anything unrecognized is Info. *)
let classify msg =
  let contains sub =
    let n = String.length msg and m = String.length sub in
    let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
    go 0
  in
  if
    List.exists contains
      [ "expired"; "reclaimed"; "requeued"; "unjournaled"; "left"; "mismatch"; "fenced" ]
  then Events.Warn
  else Events.Info

(* ---- the serve loop: a socket driver around the Core engine ---- *)

let io =
  { Core.peer = Transport.peer; send = Transport.send_msg; close = Transport.close }

let serve ?(resume = false) ?(observe = fun _ -> ()) ?(on_skip = fun () -> ())
    ?(on_warn = fun _ -> ()) ?(on_event = fun _ -> ()) ?status ~root cfg spec =
  let ( let* ) = Result.bind in
  (* A worker dying mid-write must be an EPIPE in [send], not a fatal
     signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let* dir, st = Checkpoint.open_campaign ~resume ~on_warn ~root spec in
  (* Take journal ownership before listening: the epoch every grant of
     this incarnation carries is persisted first, so even if we crash
     right after, the next incarnation bumps past us and fences
     anything we might have granted. *)
  let epoch = Checkpoint.claim_ownership ~dir in
  let* listener = Transport.listen cfg.endpoint in
  let* http =
    match status with
    | None -> Ok None
    | Some ep -> (
        match Http.listen ep with
        | Ok h -> Ok (Some h)
        | Error _ as e ->
            Transport.close_listener listener;
            e)
  in
  let writer = Journal.create_writer ~path:(Checkpoint.journal_path ~dir) in
  (* the structured event log: everything [on_event] narrates, graded
     and ring-buffered for /events, streamed to events.jsonl *)
  let events = Events.create () in
  let ev_oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 (Filename.concat dir "events.jsonl")
  in
  Events.set_sink events
    (Some
       (fun line ->
         output_string ev_oc line;
         output_char ev_oc '\n';
         flush ev_oc));
  let on_event msg =
    Events.emit events ~severity:(classify msg) ~scope:"dist" msg;
    on_event msg
  in
  let clients : (Unix.file_descr, Transport.conn Core.client) Hashtbl.t =
    Hashtbl.create 16
  in
  let core =
    Core.create ~epoch ~observe ~on_event
      ~on_drop:(fun c -> Hashtbl.remove clients (Transport.fd (Core.conn c)))
      ~io
      ~append:(Journal.append writer)
      ~st ~spec ~lease_trials:cfg.lease_trials ~lease_timeout_s:cfg.lease_timeout_s
      ~hb_interval_s:cfg.hb_interval_s ~max_workers:cfg.max_workers
      ~supervision:cfg.supervision ()
  in
  let respond =
    Status.respond
      {
        Status.view = (fun () -> Core.view core);
        events = (fun ~limit -> Events.tail ~limit events);
        metrics = (fun () -> Metrics.expose ());
      }
  in
  Events.emit events ~scope:"dist"
    (Fmt.str "serving %s on %s as epoch %d%s%s" spec.Campaign.Spec.name
       (Transport.endpoint_to_string cfg.endpoint)
       epoch
       (if epoch > 1 then Fmt.str " (restart #%d)" (epoch - 1) else "")
       (match status with
       | Some ep -> Fmt.str " (status on %s)" (Transport.endpoint_to_string ep)
       | None -> ""));
  for _ = 1 to Checkpoint.completed st do on_skip () done;
  let started = Unix.gettimeofday () in
  let step () =
    let fds =
      (Transport.listener_fd listener
      :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients [])
      @ (match http with Some h -> Http.fds h | None -> [])
    in
    let readable =
      match Unix.select fds [] [] 0.05 with
      | r, _, _ -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
    in
    List.iter
      (fun fd ->
        if fd = Transport.listener_fd listener then (
          match Transport.accept listener with
          | Ok conn ->
              Hashtbl.replace clients (Transport.fd conn) (Core.add_client core conn)
          | Error m -> on_warn m)
        else
          match Hashtbl.find_opt clients fd with
          | None -> ()
          | Some c -> (
              match Transport.recv_step (Core.conn c) with
              | `Frames frames -> List.iter (Core.deliver core c) frames
              | `Closed -> Core.client_closed core c ~why:"connection closed"
              | `Error why -> Core.client_closed core c ~why))
      readable;
    (match http with
    | Some h -> Http.handle h ~readable ~respond
    | None -> ());
    Core.tick core
  in
  let finish () =
    Core.finish core;
    (match http with Some h -> Http.close h | None -> ());
    Transport.close_listener listener;
    Journal.close_writer writer;
    Events.set_sink events None;
    close_out_noerr ev_oc
  in
  match
    while not (Core.is_done core) do
      step ()
    done
  with
  | () ->
      Events.emit events ~scope:"dist" "campaign complete";
      finish ();
      let summary = Core.summary core ~wall_s:(Unix.gettimeofday () -. started) in
      Campaign.Telemetry_io.write ~dir (Metrics.snapshot ());
      Checkpoint.write_atomic
        ~path:(Checkpoint.workers_path ~dir)
        (Json.to_string (workers_json summary) ^ "\n");
      Ok summary
  | exception e ->
      finish ();
      raise e
