module Campaign = Ffault_campaign
module Json = Campaign.Json
module Spec = Campaign.Spec
module Journal = Campaign.Journal
module Checkpoint = Campaign.Checkpoint
module Pool = Campaign.Pool
module Grid = Campaign.Grid
module Heartbeat = Ffault_supervise.Heartbeat
module Watchdog = Ffault_supervise.Watchdog
module Metrics = Ffault_telemetry.Metrics

let m_leases_granted = Metrics.counter "dist.leases_granted"
let m_leases_completed = Metrics.counter "dist.leases_completed"
let m_leases_expired = Metrics.counter "dist.leases_expired"
let m_results = Metrics.counter "dist.results"
let m_deduped = Metrics.counter "dist.results_deduped"
let m_connects = Metrics.counter "dist.worker_connects"
let m_reconnects = Metrics.counter "dist.worker_reconnects"
let g_workers = Metrics.gauge "dist.workers_connected"

type config = {
  endpoint : Transport.endpoint;
  lease_trials : int;
  lease_timeout_s : float;
  hb_interval_s : float;
  max_workers : int;
  supervision : Codec.supervision;
}

let config ?(lease_trials = 1000) ?(lease_timeout_s = 30.0) ?(hb_interval_s = 2.0)
    ?(max_workers = 64) ?(supervision = Codec.no_supervision) endpoint =
  if lease_trials < 1 then invalid_arg "Coordinator.config: lease_trials < 1";
  if (not (Float.is_finite lease_timeout_s)) || lease_timeout_s <= 0.0 then
    invalid_arg "Coordinator.config: lease_timeout_s must be finite and positive";
  if (not (Float.is_finite hb_interval_s)) || hb_interval_s <= 0.0 then
    invalid_arg "Coordinator.config: hb_interval_s must be finite and positive";
  if hb_interval_s >= lease_timeout_s then
    invalid_arg "Coordinator.config: heartbeat interval must be under the lease timeout";
  if max_workers < 1 then invalid_arg "Coordinator.config: max_workers < 1";
  { endpoint; lease_trials; lease_timeout_s; hb_interval_s; max_workers; supervision }

type worker_stats = {
  w_name : string;
  w_peer : string;
  w_domains : int;
  w_granted : int;
  w_completed : int;
  w_expired : int;
  w_results : int;
  w_deduped : int;
  w_reconnects : int;
}

type summary = {
  pool : Pool.summary;
  workers : worker_stats list;
  leases_granted : int;
  leases_completed : int;
  leases_expired : int;
}

(* ---- mutable per-worker bookkeeping (keyed by hello name) ---- *)

type wstat = {
  name : string;
  mutable peer : string;
  mutable domains : int;
  mutable granted : int;
  mutable completed : int;
  mutable expired : int;
  mutable results : int;
  mutable deduped : int;
  mutable reconnects : int;
}

let stats_of_wstat w =
  {
    w_name = w.name;
    w_peer = w.peer;
    w_domains = w.domains;
    w_granted = w.granted;
    w_completed = w.completed;
    w_expired = w.expired;
    w_results = w.results;
    w_deduped = w.deduped;
    w_reconnects = w.reconnects;
  }

let workers_json s =
  Json.Obj
    [
      ("version", Json.Int 1);
      ( "leases",
        Json.Obj
          [
            ("granted", Json.Int s.leases_granted);
            ("completed", Json.Int s.leases_completed);
            ("expired", Json.Int s.leases_expired);
          ] );
      ( "workers",
        Json.List
          (List.map
             (fun w ->
               Json.Obj
                 [
                   ("name", Json.Str w.w_name);
                   ("peer", Json.Str w.w_peer);
                   ("domains", Json.Int w.w_domains);
                   ("granted", Json.Int w.w_granted);
                   ("completed", Json.Int w.w_completed);
                   ("expired", Json.Int w.w_expired);
                   ("results", Json.Int w.w_results);
                   ("deduped", Json.Int w.w_deduped);
                   ("reconnects", Json.Int w.w_reconnects);
                 ])
             s.workers) );
    ]

(* ---- the serve loop ---- *)

type client = {
  conn : Transport.conn;
  mutable cname : string option;  (* set by Hello *)
  mutable slot : int;  (* heartbeat slot; -1 before Hello *)
}

let serve ?(resume = false) ?(observe = fun _ -> ()) ?(on_skip = fun () -> ())
    ?(on_warn = fun _ -> ()) ?(on_event = fun _ -> ()) ~root cfg spec =
  let ( let* ) = Result.bind in
  (* A worker dying mid-write must be an EPIPE in [send], not a fatal
     signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let* dir, st = Checkpoint.open_campaign ~resume ~on_warn ~root spec in
  let total = Grid.total_trials spec in
  let* listener = Transport.listen cfg.endpoint in
  let writer = Journal.create_writer ~path:(Checkpoint.journal_path ~dir) in
  let leases =
    Lease.create ~total ~lease_trials:cfg.lease_trials
      ~timeout_ns:(int_of_float (cfg.lease_timeout_s *. 1e9))
      ()
  in
  let hb = Heartbeat.create ~slots:cfg.max_workers () in
  let wd =
    Watchdog.create ~heartbeat:hb
      ~stall_ns:(int_of_float (cfg.lease_timeout_s *. 1e9))
      ()
  in
  let free_slots = ref (List.init cfg.max_workers Fun.id) in
  let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 16 in
  let wstats : (string, wstat) Hashtbl.t = Hashtbl.create 16 in
  let skipped = Checkpoint.completed st in
  for _ = 1 to skipped do on_skip () done;
  let executed = ref 0 in
  let failures = ref 0 in
  let timeouts = ref 0 in
  let retried = ref 0 in
  let quarantined = ref 0 in
  let shrunk = ref 0 in
  let started = Unix.gettimeofday () in
  let wstat_of name =
    match Hashtbl.find_opt wstats name with
    | Some w -> w
    | None ->
        let w =
          {
            name;
            peer = "?";
            domains = 0;
            granted = 0;
            completed = 0;
            expired = 0;
            results = 0;
            deduped = 0;
            reconnects = -1 (* first connect is not a reconnect *);
          }
        in
        Hashtbl.replace wstats name w;
        w
  in
  let stat_of_client c = Option.map wstat_of c.cname in
  let campaign_done () = Checkpoint.completed st >= total in
  let drop_leases_of ~why name =
    match Lease.fail leases ~owner:name with
    | [] -> ()
    | lost ->
        let w = wstat_of name in
        w.expired <- w.expired + List.length lost;
        Metrics.add m_leases_expired (List.length lost);
        List.iter
          (fun (l : Lease.lease) ->
            on_event
              (Fmt.str "lease #%d [%d,%d) reclaimed from %s (%s)" l.Lease.id l.Lease.lo
                 l.Lease.hi name why))
          lost
  in
  let drop_client ~why c =
    let fd = Transport.fd c.conn in
    if Hashtbl.mem clients fd then begin
      Hashtbl.remove clients fd;
      (match c.cname with
      | Some name ->
          on_event (Fmt.str "worker %s left (%s)" name why);
          drop_leases_of ~why name
      | None -> ());
      if c.slot >= 0 then begin
        Watchdog.detach wd ~slot:c.slot;
        free_slots := c.slot :: !free_slots;
        c.slot <- -1
      end;
      Metrics.add_gauge g_workers (-1);
      Transport.close c.conn
    end
  in
  let send_or_drop c msg =
    match Transport.send_msg c.conn msg with
    | Ok () -> ()
    | Error why -> drop_client ~why c
  in
  let done_ids_in lo hi =
    let ids = ref [] in
    for id = hi - 1 downto lo do
      if Checkpoint.is_done st id then ids := id :: !ids
    done;
    !ids
  in
  let handle_msg c msg =
    (* any frame is liveness *)
    (match c.cname with
    | Some name ->
        if c.slot >= 0 then Heartbeat.beat hb ~slot:c.slot;
        Lease.renew leases ~owner:name
    | None -> ());
    match (msg : Codec.msg) with
    | Codec.Hello { version; name; domains } ->
        if version <> Wire.version then begin
          send_or_drop c
            (Codec.Bye
               {
                 reason =
                   Fmt.str "version mismatch: coordinator speaks %d, you speak %d"
                     Wire.version version;
               });
          drop_client ~why:"version mismatch" c
        end
        else begin
          let w = wstat_of name in
          w.peer <- Transport.peer c.conn;
          w.domains <- domains;
          w.reconnects <- w.reconnects + 1;
          if w.reconnects > 0 then Metrics.incr m_reconnects;
          Metrics.incr m_connects;
          c.cname <- Some name;
          (match !free_slots with
          | slot :: rest ->
              free_slots := rest;
              c.slot <- slot;
              Heartbeat.beat hb ~slot
          | [] -> () (* more workers than slots: liveness by lease expiry only *));
          on_event
            (Fmt.str "worker %s joined from %s (%d domains)%s" name w.peer domains
               (if w.reconnects > 0 then Fmt.str " — reconnect #%d" w.reconnects else ""));
          send_or_drop c
            (Codec.Welcome
               {
                 version = Wire.version;
                 spec;
                 supervision = cfg.supervision;
                 hb_interval_s = cfg.hb_interval_s;
               })
        end
    | Codec.Request -> (
        match c.cname with
        | None -> drop_client ~why:"request before hello" c
        | Some name ->
            if campaign_done () then
              send_or_drop c (Codec.Bye { reason = "campaign complete" })
            else (
              match Lease.grant leases ~owner:name with
              | Some l ->
                  let w = wstat_of name in
                  w.granted <- w.granted + 1;
                  Metrics.incr m_leases_granted;
                  on_event
                    (Fmt.str "lease #%d [%d,%d) -> %s" l.Lease.id l.Lease.lo l.Lease.hi
                       name);
                  send_or_drop c
                    (Codec.Lease
                       {
                         lease = l.Lease.id;
                         lo = l.Lease.lo;
                         hi = l.Lease.hi;
                         done_ids = done_ids_in l.Lease.lo l.Lease.hi;
                       })
              | None ->
                  send_or_drop c
                    (Codec.Wait
                       { seconds = Float.min 1.0 (cfg.lease_timeout_s /. 4.0) })))
    | Codec.Result r ->
        let w = stat_of_client c in
        if r.Journal.trial < 0 || r.Journal.trial >= total then
          (* out-of-grid id: protocol violation, not data *)
          drop_client ~why:(Fmt.str "result for trial %d outside the grid" r.Journal.trial)
            c
        else if Checkpoint.is_done st r.Journal.trial then begin
          (* zombie worker still streaming an expired lease, or a
             re-run after reclaim — journaled once already, drop *)
          Option.iter (fun w -> w.deduped <- w.deduped + 1) w;
          Metrics.incr m_deduped
        end
        else begin
          Journal.append writer r;
          Checkpoint.mark st r.Journal.trial ~ok:r.Journal.ok;
          incr executed;
          (match r.Journal.outcome with
          | Journal.Violation -> incr failures
          | Journal.Timeout -> incr timeouts
          | Journal.Quarantined -> incr quarantined
          | Journal.Pass -> ());
          if r.Journal.retries > 0 then retried := !retried + r.Journal.retries;
          if r.Journal.witness <> None && r.Journal.outcome = Journal.Violation then
            incr shrunk;
          Option.iter (fun w -> w.results <- w.results + 1) w;
          Metrics.incr m_results;
          observe r
        end
    | Codec.Complete { lease = id } -> (
        match Lease.find leases ~id with
        | None -> () (* stale lease: expired and re-issued; the re-lease owns it *)
        | Some l ->
            let missing =
              let n = ref 0 in
              for t = l.Lease.lo to l.Lease.hi - 1 do
                if not (Checkpoint.is_done st t) then incr n
              done;
              !n
            in
            if missing = 0 then begin
              ignore (Lease.complete leases ~id);
              Option.iter (fun w -> w.completed <- w.completed + 1) (stat_of_client c);
              Metrics.incr m_leases_completed
            end
            else begin
              (* completed with holes: take the shard back *)
              ignore (Lease.revoke leases ~id);
              Option.iter (fun w -> w.expired <- w.expired + 1) (stat_of_client c);
              Metrics.incr m_leases_expired;
              on_event
                (Fmt.str "lease #%d completed with %d trial(s) unjournaled — requeued" id
                   missing)
            end)
    | Codec.Heartbeat -> ()
    | Codec.Bye { reason } -> drop_client ~why:(Fmt.str "bye: %s" reason) c
    | Codec.Welcome _ | Codec.Lease _ | Codec.Wait _ ->
        drop_client ~why:"coordinator-bound stream carried a coordinator message" c
  in
  let tick () =
    (* lease expiry by silence (the watchdog view feeds the same
       clock): requeue, so the next Request re-issues the shard *)
    List.iter
      (fun (owner, (l : Lease.lease)) ->
        let w = wstat_of owner in
        w.expired <- w.expired + 1;
        Metrics.incr m_leases_expired;
        on_event
          (Fmt.str "lease #%d [%d,%d) of %s expired (no traffic for %gs)" l.Lease.id
             l.Lease.lo l.Lease.hi owner cfg.lease_timeout_s))
      (Lease.expire leases);
    (* watchdog: drop connections whose heartbeat slot went silent *)
    let stuck = Watchdog.poll wd in
    if stuck <> [] then
      Hashtbl.fold (fun _ c acc -> c :: acc) clients []
      |> List.iter (fun c ->
             if c.slot >= 0 && List.mem c.slot stuck then
               drop_client ~why:"heartbeat silence (watchdog)" c)
  in
  let step () =
    let fds =
      Transport.listener_fd listener
      :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients []
    in
    let readable =
      match Unix.select fds [] [] 0.05 with
      | r, _, _ -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
    in
    List.iter
      (fun fd ->
        if fd = Transport.listener_fd listener then (
          match Transport.accept listener with
          | Ok conn ->
              Hashtbl.replace clients (Transport.fd conn)
                { conn; cname = None; slot = -1 };
              Metrics.add_gauge g_workers 1
          | Error m -> on_warn m)
        else
          match Hashtbl.find_opt clients fd with
          | None -> ()
          | Some c -> (
              match Transport.recv_step c.conn with
              | `Frames frames ->
                  List.iter
                    (fun f ->
                      if Hashtbl.mem clients fd then
                        match Codec.of_frame f with
                        | Ok msg -> handle_msg c msg
                        | Error why -> drop_client ~why c)
                    frames
              | `Closed -> drop_client ~why:"connection closed" c
              | `Error why -> drop_client ~why c))
      readable;
    tick ()
  in
  let finish () =
    (* the winning worker's [Complete] may still be in flight when the
       last result lands — a fully-journaled live lease is completed
       work, not an expiry *)
    List.iter
      (fun (owner, (l : Lease.lease)) ->
        let missing = ref 0 in
        for t = l.Lease.lo to l.Lease.hi - 1 do
          if not (Checkpoint.is_done st t) then incr missing
        done;
        if !missing = 0 then begin
          ignore (Lease.complete leases ~id:l.Lease.id);
          let w = wstat_of owner in
          w.completed <- w.completed + 1;
          Metrics.incr m_leases_completed
        end)
      (Lease.live leases);
    Hashtbl.iter
      (fun _ c -> ignore (Transport.send_msg c.conn (Codec.Bye { reason = "campaign complete" })))
      clients;
    Hashtbl.fold (fun _ c acc -> c :: acc) clients []
    |> List.iter (fun c -> drop_client ~why:"campaign complete" c);
    Transport.close_listener listener;
    Journal.close_writer writer
  in
  match
    while not (campaign_done ()) do
      step ()
    done
  with
  | () ->
      finish ();
      let wall_s = Unix.gettimeofday () -. started in
      let pool =
        {
          Pool.total;
          executed = !executed;
          skipped;
          failures = !failures;
          shrunk = !shrunk;
          timeouts = !timeouts;
          retried = !retried;
          quarantined = !quarantined;
          wall_s;
          trials_per_s = Pool.trials_rate ~executed:!executed ~wall_s;
        }
      in
      let workers =
        Hashtbl.fold (fun _ w acc -> stats_of_wstat w :: acc) wstats []
        |> List.sort (fun a b -> compare a.w_name b.w_name)
      in
      let summary =
        {
          pool;
          workers;
          leases_granted = Lease.granted_total leases;
          leases_completed = Lease.completed_total leases;
          leases_expired = Lease.expired_total leases;
        }
      in
      Campaign.Telemetry_io.write ~dir (Metrics.snapshot ());
      Out_channel.with_open_text (Checkpoint.workers_path ~dir) (fun oc ->
          output_string oc (Json.to_string (workers_json summary));
          output_char oc '\n');
      Ok summary
  | exception e ->
      finish ();
      raise e
