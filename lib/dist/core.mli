(** The coordinator engine, independent of any transport.

    {!Coordinator.serve} owns sockets, [select] and the journal file;
    everything else — the lease table, per-worker bookkeeping, the
    exactly-once message handling — lives here, parameterized over an
    {!io} record and a {!Ffault_runtime.Clock.t}. The real driver
    instantiates it with {!Transport} connections and the monotonic
    clock; the netsim driver instantiates it with simulated connections
    and virtual time, so the very same engine code runs under
    deterministic fault schedules.

    The engine is single-threaded by contract: the driver serializes
    {!deliver}, {!tick}, {!client_closed} and {!finish} (the socket
    driver's select loop and the netsim scheduler both do). *)

module Campaign = Ffault_campaign

(** How the engine talks to a connection of type ['c]. [send] returning
    [Error] means the peer is gone — the engine drops the client. *)
type 'c io = {
  peer : 'c -> string;  (** human-readable address, for the Workers report *)
  send : 'c -> Codec.msg -> (unit, string) result;
  close : 'c -> unit;
}

type 'c t
type 'c client

(** {2 Worker statistics} (persisted as [workers.json]) *)

type worker_stats = {
  w_name : string;
  w_peer : string;  (** last known address *)
  w_domains : int;
  w_granted : int;
  w_completed : int;
  w_expired : int;  (** leases lost to disconnect, silence or reconcile *)
  w_results : int;  (** records journaled from this worker *)
  w_deduped : int;  (** zombie results dropped by trial-id dedup *)
  w_reconnects : int;
}

type summary = {
  pool : Campaign.Pool.summary;  (** same shape as a local run *)
  workers : worker_stats list;
  leases_granted : int;
  leases_completed : int;
  leases_expired : int;
}

val workers_json : summary -> Campaign.Json.t

(** {2 Engine lifecycle} *)

val create :
  ?clock:Ffault_runtime.Clock.t ->
  ?verify_complete:bool ->
  ?observe:(Campaign.Journal.record -> unit) ->
  ?on_event:(string -> unit) ->
  ?on_drop:('c client -> unit) ->
  io:'c io ->
  append:(Campaign.Journal.record -> unit) ->
  st:Campaign.Checkpoint.t ->
  spec:Campaign.Spec.t ->
  lease_trials:int ->
  lease_timeout_s:float ->
  hb_interval_s:float ->
  max_workers:int ->
  supervision:Codec.supervision ->
  unit ->
  'c t
(** [append] journals one record (the socket driver appends to the
    journal file, netsim to an in-memory buffer); [st] is the resume
    mask [append] must stay consistent with. [on_drop] fires once per
    dropped client, before its connection is closed — the driver
    unindexes it there. [verify_complete] (default [true]) guards the
    journal-completeness check behind [Complete]; netsim's mutation
    test switches it off to plant the lease-retirement bug that the
    fault-schedule search must catch. *)

val add_client : 'c t -> 'c -> 'c client
(** Register a fresh inbound connection (nothing is granted until its
    [Hello]). *)

val conn : 'c client -> 'c
val dropped : 'c client -> bool

val deliver : 'c t -> 'c client -> Wire.frame -> unit
(** Decode and handle one frame from this client. No-op once the client
    is dropped; an undecodable frame drops it. *)

val client_closed : 'c t -> 'c client -> why:string -> unit
(** The driver saw EOF or a transport error: requeue the client's
    leases and forget it. *)

val tick : 'c t -> unit
(** Time-based duties, driven by the engine's clock: expire silent
    leases, drop connections the watchdog flags. The socket driver
    calls it once per select round; netsim on a virtual timer. *)

val is_done : 'c t -> bool
(** Every trial id journaled. *)

val finish : 'c t -> unit
(** Shutdown sweep: retire fully-journaled live leases whose [Complete]
    is still in flight, send every client a [Bye] and drop it. *)

val summary : 'c t -> wall_s:float -> summary
