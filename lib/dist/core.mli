(** The coordinator engine, independent of any transport.

    {!Coordinator.serve} owns sockets, [select] and the journal file;
    everything else — the lease table, per-worker bookkeeping, the
    exactly-once message handling — lives here, parameterized over an
    {!io} record and a {!Ffault_runtime.Clock.t}. The real driver
    instantiates it with {!Transport} connections and the monotonic
    clock; the netsim driver instantiates it with simulated connections
    and virtual time, so the very same engine code runs under
    deterministic fault schedules.

    The engine is single-threaded by contract: the driver serializes
    {!deliver}, {!tick}, {!client_closed} and {!finish} (the socket
    driver's select loop and the netsim scheduler both do). *)

module Campaign = Ffault_campaign

(** How the engine talks to a connection of type ['c]. [send] returning
    [Error] means the peer is gone — the engine drops the client. *)
type 'c io = {
  peer : 'c -> string;  (** human-readable address, for the Workers report *)
  send : 'c -> Codec.msg -> (unit, string) result;
  close : 'c -> unit;
}

type 'c t
type 'c client

(** {2 Worker statistics} (persisted as [workers.json]) *)

type worker_stats = {
  w_name : string;
  w_peer : string;  (** last known address *)
  w_domains : int;
  w_granted : int;
  w_completed : int;
  w_expired : int;  (** leases lost to disconnect, silence or reconcile *)
  w_results : int;  (** records journaled from this worker *)
  w_deduped : int;  (** zombie results dropped by trial-id dedup *)
  w_reconnects : int;
  w_telemetry : Campaign.Json.t option;
      (** last telemetry snapshot this worker piggybacked on a heartbeat
          ({!Ffault_campaign.Telemetry_io} shape); [None] for
          pre-observability workers *)
}

type summary = {
  pool : Campaign.Pool.summary;  (** same shape as a local run *)
  workers : worker_stats list;
  epoch : int;  (** the finishing incarnation; restarts = epoch - 1 *)
  leases_granted : int;
  leases_completed : int;
  leases_expired : int;
  worker_spans : (string * Campaign.Json.t list) list;
      (** Chrome-format span events each worker shipped on its
          heartbeats, oldest first, name-sorted; only workers that
          shipped any appear. Feeds {!Ffault_campaign.Trace_merge}. *)
}

val workers_json : summary -> Campaign.Json.t
(** The [workers.json] artifact (version 2): per-worker stats plus, when
    any worker piggybacked telemetry, its last snapshot and a top-level
    ["fleet"] object summing the per-worker counters by name. *)

val merge_counter_snapshots : Campaign.Json.t list -> (string * int) list
(** Sum the ["counters"] objects of telemetry snapshots by counter name,
    name-sorted — the fleet-wide totals. *)

(** {2 Live inspection}

    A transport-free snapshot of the engine for the status endpoint:
    {!Status} renders it to JSON, the HTTP layer only moves bytes. Pure
    reads — taking a view never mutates the engine. *)

type wview = {
  v_name : string;
  v_peer : string;
  v_domains : int;
  v_connected : bool;
  v_hb_age_s : float option;
      (** seconds since the engine last heard any frame from this
          worker, on the engine's clock; [None] before the first frame *)
  v_granted : int;
  v_completed : int;
  v_expired : int;
  v_results : int;
  v_deduped : int;
  v_reconnects : int;
  v_telemetry : Campaign.Json.t option;
}

type view = {
  vw_campaign : string;
  vw_protocol : string;
  vw_epoch : int;  (** this incarnation (see {!create}'s [epoch]) *)
  vw_restarts : int;  (** [max 0 (epoch - 1)] — crash-restarts survived *)
  vw_stale_completes : int;  (** [Complete] frames fenced for a stale epoch *)
  vw_running : bool;
  vw_total : int;
  vw_done : int;  (** journaled, including prior-run skips *)
  vw_skipped : int;
  vw_executed : int;
  vw_failures : int;
  vw_timeouts : int;
  vw_retried : int;
  vw_quarantined : int;
  vw_elapsed_s : float;  (** engine-clock seconds since {!create} *)
  vw_workers_connected : int;
  vw_hb_interval_s : float;
  vw_lease_timeout_s : float;
  vw_leases_outstanding : int;
  vw_leases_pending : int;
  vw_leases_granted : int;
  vw_leases_completed : int;
  vw_leases_expired : int;
  vw_workers : wview list;  (** name-sorted, disconnected included *)
}

val view : 'c t -> view

(** {2 Engine lifecycle} *)

val create :
  ?clock:Ffault_runtime.Clock.t ->
  ?epoch:int ->
  ?fence_epochs:bool ->
  ?verify_complete:bool ->
  ?observe:(Campaign.Journal.record -> unit) ->
  ?on_event:(string -> unit) ->
  ?on_requeue:(string -> int -> unit) ->
  ?on_drop:('c client -> unit) ->
  io:'c io ->
  append:(Campaign.Journal.record -> unit) ->
  st:Campaign.Checkpoint.t ->
  spec:Campaign.Spec.t ->
  lease_trials:int ->
  lease_timeout_s:float ->
  hb_interval_s:float ->
  max_workers:int ->
  supervision:Codec.supervision ->
  unit ->
  'c t
(** [append] journals one record (the socket driver appends to the
    journal file, netsim to an in-memory buffer); [st] is the resume
    mask [append] must stay consistent with. Creation runs {e recovery}:
    every shard [st] proves fully journaled is pre-retired, so a
    restarted incarnation never re-grants finished work — the lease
    table of the previous incarnation is lost with its process and
    deliberately not trusted.

    [epoch] (default 1, must be positive) is this incarnation's fencing
    token, from {!Campaign.Checkpoint.claim_ownership}: every [Welcome]
    and [Lease] carries it, and a [Complete] whose grant epoch differs
    is fenced — its trial results are still dedup-accepted by id, but
    the shard's fate is decided by the journal via the
    reconcile-at-request rule, never by a stale incarnation's
    bookkeeping. [fence_epochs:false] plants the stale-epoch-trust bug
    (netsim's fencing self-test). [on_requeue owner lease_id] fires
    whenever a lease of [owner] is requeued (expiry, disconnect,
    reconcile, or a holey [Complete]) — netsim's re-execution checker
    marks its reconcile points there.

    [on_drop] fires once per dropped client, before its connection is
    closed — the driver unindexes it there. [verify_complete] (default
    [true]) guards the journal-completeness check behind [Complete];
    netsim's mutation test switches it off to plant the
    lease-retirement bug that the fault-schedule search must catch. *)

val add_client : 'c t -> 'c -> 'c client
(** Register a fresh inbound connection (nothing is granted until its
    [Hello]). *)

val conn : 'c client -> 'c
val dropped : 'c client -> bool

val deliver : 'c t -> 'c client -> Wire.frame -> unit
(** Decode and handle one frame from this client. No-op once the client
    is dropped; an undecodable frame drops it. *)

val client_closed : 'c t -> 'c client -> why:string -> unit
(** The driver saw EOF or a transport error: requeue the client's
    leases and forget it. *)

val tick : 'c t -> unit
(** Time-based duties, driven by the engine's clock: expire silent
    leases, drop connections the watchdog flags. The socket driver
    calls it once per select round; netsim on a virtual timer. *)

val is_done : 'c t -> bool
(** Every trial id journaled. *)

val finish : 'c t -> unit
(** Shutdown sweep: retire fully-journaled live leases whose [Complete]
    is still in flight, send every client a [Bye] and drop it. *)

val summary : 'c t -> wall_s:float -> summary
