module Campaign = Ffault_campaign
module Pool = Campaign.Pool
module Journal = Campaign.Journal
module Json = Campaign.Json
module Telemetry_io = Campaign.Telemetry_io
module Metrics = Ffault_telemetry.Metrics
module Tracer = Ffault_telemetry.Tracer
module Retry = Ffault_supervise.Retry

let m_leases = Metrics.counter "dist.worker_leases"
let m_trials = Metrics.counter "dist.worker_trials"
let m_reconnects = Metrics.counter "dist.reconnects"

type config = {
  endpoint : Transport.endpoint;
  name : string;
  domains : int;
  chunk : int;
}

let default_name () =
  let host = try Unix.gethostname () with Unix.Unix_error _ -> "worker" in
  Fmt.str "%s-%d" host (Unix.getpid ())

let config ?name ?(domains = 1) ?(chunk = 64) endpoint =
  if domains < 1 then invalid_arg "Worker.config: domains < 1";
  if chunk < 1 then invalid_arg "Worker.config: chunk < 1";
  let name = match name with Some n -> n | None -> default_name () in
  { endpoint; name; domains; chunk }

(* Bounded backoff for (re)connecting to the coordinator — the same
   Retry machinery the trial engine uses, seeded by the worker name so
   a fleet restarting against one coordinator does not thundering-herd.
   Generous on purpose: the schedule must ride out a coordinator crash
   plus its restart (~23 s worst case end to end). *)
let default_retry =
  Retry.policy ~max_retries:8 ~base_backoff_ns:250_000_000
    ~max_backoff_ns:5_000_000_000 ()

type summary = {
  leases_run : int;
  trials_run : int;
  trials_skipped : int;
  reconnects : int;
  stop_reason : string;
}

let supervision_of_wire (s : Codec.supervision) =
  (* adaptive without a deadline is meaningless (and the Pool builder
     rejects it); a coordinator never sends it, but the wire could *)
  let adaptive = s.Codec.adaptive_deadline && s.Codec.deadline_s <> None in
  Pool.supervision ?deadline_s:s.Codec.deadline_s ~max_retries:s.Codec.max_retries
    ~quarantine_after:s.Codec.quarantine_after ~adaptive_deadline:adaptive ()

(* The worker side of the protocol, as pure classification — shared by
   this blocking socket driver and the netsim worker actor, so the
   simulated worker cannot drift from the real one. *)
module Protocol = struct
  type welcome = {
    epoch : int;
    spec : Campaign.Spec.t;
    supervision : Codec.supervision;
    hb_interval_s : float;
  }

  let hello ~name ~domains ~last_epoch =
    Codec.Hello { version = Wire.version; name; domains; last_epoch }

  let welcome_reply = function
    | Codec.Welcome { version; epoch; spec; supervision; hb_interval_s } ->
        if version <> Wire.version then
          Error
            (Fmt.str "version mismatch: coordinator speaks %d, we speak %d" version
               Wire.version)
        else Ok { epoch; spec; supervision; hb_interval_s }
    | Codec.Bye { reason } -> Error (Fmt.str "rejected: %s" reason)
    | m -> Error (Fmt.str "expected welcome, got %a" Codec.pp m)

  type reply =
    | Granted of { lease : int; epoch : int; lo : int; hi : int; done_ids : int list }
    | Backoff of float
    | Stop of string
    | Ignore
    | Unexpected of string

  let lease_reply = function
    | Codec.Lease { lease; epoch; lo; hi; done_ids } ->
        Granted { lease; epoch; lo; hi; done_ids }
    | Codec.Wait { seconds } -> Backoff seconds
    | Codec.Bye { reason } -> Stop reason
    | Codec.Heartbeat _ -> Ignore (* tolerated, not expected *)
    | m -> Unexpected (Fmt.str "expected lease, got %a" Codec.pp m)

  let ids_to_run ~lo ~hi ~done_ids =
    let done_tbl = Hashtbl.create (List.length done_ids * 2 + 1) in
    List.iter (fun id -> Hashtbl.replace done_tbl id ()) done_ids;
    List.filter
      (fun id -> not (Hashtbl.mem done_tbl id))
      (List.init (hi - lo) (fun i -> lo + i))
end

(* The observability payload of one beat: the current metrics snapshot
   (cheap — a few hundred counter reads) and, when tracing, whatever
   spans accumulated since the last beat (pid-less Chrome shape — the
   coordinator's merge assigns the pid row). [keep] also records the
   spans locally so [--trace] can write this worker's own file at the
   end. *)
let piggyback ~keep () =
  let snapshot = Some (Telemetry_io.to_json (Metrics.snapshot ())) in
  let spans =
    if not (Tracer.enabled ()) then None
    else
      match Campaign.Trace_merge.of_tracer_events (Tracer.drain ()) with
      | [] -> None
      | batch ->
          keep batch;
          Some (Json.List batch)
  in
  Codec.Heartbeat { snapshot; spans }

(* The heartbeat thread: one [Heartbeat] frame per interval until
   stopped. Send failures are ignored here — the main loop is about to
   see the same broken socket on its next send or recv. *)
let start_heartbeat conn ~interval_s ~beat =
  let stop = Atomic.make false in
  let thread =
    Thread.create
      (fun () ->
        let slice = 0.05 in
        let rec sleep remaining =
          if remaining > 0.0 && not (Atomic.get stop) then begin
            Thread.delay (Float.min slice remaining);
            sleep (remaining -. slice)
          end
        in
        while not (Atomic.get stop) do
          ignore (Transport.send_msg conn (beat ()));
          sleep interval_s
        done)
      ()
  in
  fun () ->
    Atomic.set stop true;
    Thread.join thread

let write_local_trace path spans =
  let pid = Unix.getpid () in
  let stamped =
    List.map
      (fun s ->
        match s with
        | Json.Obj fields -> Json.Obj (fields @ [ ("pid", Json.Int pid) ])
        | other -> other)
      spans
  in
  let doc =
    Json.Obj
      [ ("traceEvents", Json.List stamped); ("displayTimeUnit", Json.Str "ms") ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string doc))

(* How one connected session ends: the campaign is over ([Done]), the
   connection died and a fresh session should resume ([Lost]), or the
   protocol itself went wrong and retrying is pointless ([Fatal]). *)
type session_end = Done of string | Lost of string | Fatal of string

let run ?(on_event = fun _ -> ()) ?(on_warn = fun _ -> ()) ?(retry = default_retry)
    ?trace_path cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let seed = Int64.of_int (Hashtbl.hash cfg.name) in
  (* state that survives reconnects: the coordinator epoch we last saw,
     the in-flight lease with every record it produced (for resend),
     and the lifetime counters *)
  let last_epoch = ref 0 in
  let cur : (int * int * Journal.record list ref) option ref = ref None in
  let leases_run = ref 0 in
  let trials_run = ref 0 in
  let trials_skipped = ref 0 in
  let reconnects = ref 0 in
  let failures = ref 0 in
  (* the heartbeat thread and the engine both drain the tracer; [keep]
     is the only shared state and stays mutex-guarded *)
  let spans_lock = Mutex.create () in
  let local_spans_rev = ref [] in
  let keep batch =
    if trace_path <> None then begin
      Mutex.lock spans_lock;
      local_spans_rev := List.rev_append batch !local_spans_rev;
      Mutex.unlock spans_lock
    end
  in
  let run_session conn =
    let fin r =
      Transport.close conn;
      r
    in
    match
      Transport.send_msg conn
        (Protocol.hello ~name:cfg.name ~domains:cfg.domains ~last_epoch:!last_epoch)
    with
    | Error e -> fin (Lost e)
    | Ok () -> (
        match Transport.recv_msg conn with
        | `Closed -> fin (Lost "connection closed before welcome")
        | `Error e -> fin (Lost e)
        | `Msg m -> (
            match Protocol.welcome_reply m with
            | Error e -> fin (Fatal e)
            | Ok { Protocol.epoch; spec; supervision; hb_interval_s } ->
                failures := 0;
                if !last_epoch > 0 && epoch <> !last_epoch then
                  on_event
                    (Fmt.str "coordinator is now epoch %d (was %d)" epoch !last_epoch);
                last_epoch := epoch;
                let supervision = supervision_of_wire supervision in
                let beat = piggyback ~keep in
                let stop_hb = start_heartbeat conn ~interval_s:hb_interval_s ~beat in
                let fin r =
                  stop_hb ();
                  fin r
                in
                (* Replay the lease in flight when the last connection
                   died: every record it produced, then its [Complete]
                   under the original grant epoch. The coordinator
                   dedups the records by trial id; a stale-epoch
                   [Complete] is fenced there and the shard's fate
                   decided from the journal — either way, no trial is
                   re-executed here. *)
                let resend () =
                  match !cur with
                  | None -> Ok ()
                  | Some (lease, grant_epoch, records_rev) ->
                      on_event
                        (Fmt.str "resending lease #%d: %d record(s) and its completion"
                           lease
                           (List.length !records_rev));
                      let rec send_all = function
                        | [] ->
                            Transport.send_msg conn
                              (Codec.Complete { lease; epoch = grant_epoch })
                        | r :: rest -> (
                            match Transport.send_msg conn (Codec.Result r) with
                            | Ok () -> send_all rest
                            | Error _ as e -> e)
                      in
                      Result.map (fun () -> cur := None) (send_all (List.rev !records_rev))
                in
                let run_lease ~lease ~epoch ~lo ~hi ~done_ids =
                  on_event
                    (Fmt.str "lease #%d [%d,%d): %d trial(s), %d already journaled" lease
                       lo hi (hi - lo) (List.length done_ids));
                  let done_tbl = Hashtbl.create (List.length done_ids * 2 + 1) in
                  List.iter (fun id -> Hashtbl.replace done_tbl id ()) done_ids;
                  let skip id = id < lo || id >= hi || Hashtbl.mem done_tbl id in
                  (* if the coordinator vanishes mid-lease the sends
                     start failing; note the first error, let the
                     (bounded) range finish — buffering every record —
                     and resend the lot on the next session *)
                  let buf = ref [] in
                  cur := Some (lease, epoch, buf);
                  let send_error = ref None in
                  let on_record r =
                    incr trials_run;
                    Metrics.incr m_trials;
                    buf := r :: !buf;
                    if !send_error = None then
                      match Transport.send_msg conn (Codec.Result r) with
                      | Ok () -> ()
                      | Error e -> send_error := Some e
                  in
                  ignore
                    (Pool.run_trials ~domains:cfg.domains ~chunk:cfg.chunk ~skip
                       ~supervision ~on_record spec);
                  incr leases_run;
                  Metrics.incr m_leases;
                  trials_skipped := !trials_skipped + List.length done_ids;
                  match !send_error with
                  | Some e -> Error (Fmt.str "streaming results: %s" e)
                  | None -> (
                      (* flush beat ahead of [Complete]: the coordinator
                         sees this lease's tail spans and final counters
                         even if the campaign ends on our completion *)
                      ignore (Transport.send_msg conn (beat ()));
                      match Transport.send_msg conn (Codec.Complete { lease; epoch }) with
                      | Ok () ->
                          cur := None;
                          Ok ()
                      | Error _ as e -> e)
                in
                (* A failed send may have raced the coordinator's
                   shutdown: the [Bye] is written before the socket
                   closes, so it is ordered before the EOF and still
                   readable. Prefer it over the send error; a
                   coordinator that actually died yields [`Closed] and
                   the loss stands (to be retried). *)
                let bye_or err =
                  match Transport.recv_msg conn with
                  | `Msg (Codec.Bye { reason }) -> Done reason
                  | `Msg _ | `Closed | `Error _ -> Lost err
                in
                let rec serve () =
                  match Transport.send_msg conn Codec.Request with
                  | Error e -> bye_or e
                  | Ok () -> (
                      match Transport.recv_msg conn with
                      | `Msg m -> (
                          match Protocol.lease_reply m with
                          | Protocol.Granted { lease; epoch; lo; hi; done_ids } -> (
                              match run_lease ~lease ~epoch ~lo ~hi ~done_ids with
                              | Ok () -> serve ()
                              | Error e -> bye_or e)
                          | Protocol.Backoff seconds ->
                              Thread.delay (Float.max 0.01 seconds);
                              serve ()
                          | Protocol.Stop reason -> Done reason
                          | Protocol.Ignore -> serve ()
                          | Protocol.Unexpected e -> Fatal e)
                      | `Closed -> Lost "connection closed"
                      | `Error e -> Lost e)
                in
                fin (match resend () with Error e -> bye_or e | Ok () -> serve ())))
  in
  let backoff what e k =
    incr failures;
    if !failures > retry.Retry.max_retries then
      Error (Fmt.str "%s: %s (gave up after %d consecutive failure(s))" what e !failures)
    else begin
      let delay_s = float_of_int (Retry.backoff_ns retry ~seed ~attempt:!failures) /. 1e9 in
      on_warn
        (Fmt.str "%s: %s — retry %d/%d in %.2fs" what e !failures retry.Retry.max_retries
           delay_s);
      Thread.delay delay_s;
      k ()
    end
  in
  let rec go () =
    match Transport.connect cfg.endpoint with
    | Error e -> backoff "connect failed" e go
    | Ok conn -> (
        match run_session conn with
        | Done reason -> Ok reason
        | Fatal e -> Error e
        | Lost e ->
            incr reconnects;
            Metrics.incr m_reconnects;
            backoff "connection lost" e go)
  in
  let finish r =
    if trace_path <> None && Tracer.enabled () then
      keep (Campaign.Trace_merge.of_tracer_events (Tracer.drain ()));
    Option.iter (fun path -> write_local_trace path (List.rev !local_spans_rev)) trace_path;
    r
  in
  match go () with
  | Ok reason ->
      on_event (Fmt.str "coordinator: %s" reason);
      finish
        (Ok
           {
             leases_run = !leases_run;
             trials_run = !trials_run;
             trials_skipped = !trials_skipped;
             reconnects = !reconnects;
             stop_reason = reason;
           })
  | Error e -> finish (Error e)
