(** A minimal HTTP/1.0 layer for the coordinator's read-only status
    endpoint — no dependency beyond [Unix], GET only, one request per
    connection.

    The server side owns no loop: the coordinator merges {!fds} into
    its existing [select] set and forwards the readable ones to
    {!handle}, which accepts, reads, asks [respond] for the body and
    closes. Response {e content} never originates here — that is
    {!Status.respond}'s job — so this module stays pure plumbing and
    the lint policy confines socket IO to the driver layer.

    The client side ({!get}) backs [ffault campaign status]. *)

type server

type response = Status.response = { code : int; content_type : string; body : string }

val listen : ?backlog:int -> Transport.endpoint -> (server, string) result
(** Bind and listen (stale Unix-socket files are unlinked first, and
    again on {!close}). *)

val fds : server -> Unix.file_descr list
(** The listener plus any half-read client connections — merge these
    into the driver's [select] read set. Empty after {!close}. *)

val owns : server -> Unix.file_descr -> bool

val handle :
  server ->
  readable:Unix.file_descr list ->
  respond:(string -> response) ->
  unit
(** Process the fds [select] reported readable, ignoring any that are
    not ours: accept new connections, buffer request bytes, and once a
    request line is in, write [respond path] and close. Bad methods get
    a 405, oversized requests a 400; peers that vanish are dropped
    silently. *)

val close : server -> unit
(** Idempotent; closes the listener and every pending connection. *)

val get : Transport.endpoint -> path:string -> (response, string) result
(** One blocking GET: connect, request [path], read to EOF, parse the
    status code, content type and body. *)
