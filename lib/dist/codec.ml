module Json = Ffault_campaign.Json
module Spec = Ffault_campaign.Spec
module Journal = Ffault_campaign.Journal

type supervision = {
  deadline_s : float option;
  max_retries : int;
  quarantine_after : int;
  adaptive_deadline : bool;
}

let no_supervision =
  { deadline_s = None; max_retries = 2; quarantine_after = 3; adaptive_deadline = false }

type msg =
  | Hello of { version : int; name : string; domains : int; last_epoch : int }
  | Welcome of {
      version : int;
      epoch : int;
      spec : Spec.t;
      supervision : supervision;
      hb_interval_s : float;
    }
  | Request
  | Lease of { lease : int; epoch : int; lo : int; hi : int; done_ids : int list }
  | Result of Journal.record
  | Complete of { lease : int; epoch : int }
  | Heartbeat of { snapshot : Json.t option; spans : Json.t option }
  | Wait of { seconds : float }
  | Bye of { reason : string }

(* The bare liveness beat — what pre-observability workers send, and
   what everything that only cares about liveness should construct. *)
let heartbeat = Heartbeat { snapshot = None; spans = None }

(* One tag byte per message kind. 'R' vs 'r': results are the hot
   frame, requests the idle one. *)
let tag_of = function
  | Hello _ -> 'h'
  | Welcome _ -> 'w'
  | Request -> 'r'
  | Lease _ -> 'l'
  | Result _ -> 'R'
  | Complete _ -> 'c'
  | Heartbeat _ -> 'b'
  | Wait _ -> 'z'
  | Bye _ -> 'y'

let supervision_to_json s =
  Json.Obj
    [
      ( "deadline_s",
        match s.deadline_s with Some d -> Json.Float d | None -> Json.Null );
      ("max_retries", Json.Int s.max_retries);
      ("quarantine_after", Json.Int s.quarantine_after);
      ("adaptive_deadline", Json.Bool s.adaptive_deadline);
    ]

let supervision_of_json j =
  let int_field name d =
    match Option.bind (Json.member name j) Json.get_int with Some i -> i | None -> d
  in
  {
    deadline_s = Option.bind (Json.member "deadline_s" j) Json.get_float;
    max_retries = int_field "max_retries" no_supervision.max_retries;
    quarantine_after = int_field "quarantine_after" no_supervision.quarantine_after;
    adaptive_deadline =
      (match Option.bind (Json.member "adaptive_deadline" j) Json.get_bool with
      | Some b -> b
      | None -> false);
  }

let payload_of = function
  | Hello { version; name; domains; last_epoch } ->
      Json.Obj
        [
          ("version", Json.Int version);
          ("name", Json.Str name);
          ("domains", Json.Int domains);
          ("last_epoch", Json.Int last_epoch);
        ]
  | Welcome { version; epoch; spec; supervision; hb_interval_s } ->
      Json.Obj
        [
          ("version", Json.Int version);
          ("epoch", Json.Int epoch);
          ("spec", Spec.to_json spec);
          ("supervision", supervision_to_json supervision);
          ("hb_interval_s", Json.Float hb_interval_s);
        ]
  | Request -> Json.Obj []
  | Heartbeat { snapshot; spans } ->
      (* both fields optional: a bare beat encodes as the legacy "{}",
         so old decoders never see an unknown shape *)
      Json.Obj
        ((match snapshot with Some s -> [ ("snapshot", s) ] | None -> [])
        @ match spans with Some s -> [ ("spans", s) ] | None -> [])
  | Lease { lease; epoch; lo; hi; done_ids } ->
      Json.Obj
        [
          ("lease", Json.Int lease);
          ("epoch", Json.Int epoch);
          ("lo", Json.Int lo);
          ("hi", Json.Int hi);
          ("done", Json.List (List.map (fun i -> Json.Int i) done_ids));
        ]
  | Result r -> Journal.to_json r
  | Complete { lease; epoch } ->
      Json.Obj [ ("lease", Json.Int lease); ("epoch", Json.Int epoch) ]
  | Wait { seconds } -> Json.Obj [ ("seconds", Json.Float seconds) ]
  | Bye { reason } -> Json.Obj [ ("reason", Json.Str reason) ]

let to_frame msg = { Wire.tag = tag_of msg; payload = Json.to_string (payload_of msg) }

let ( let* ) = Result.bind

let field name get j =
  match Option.bind (Json.member name j) get with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "codec: missing or malformed %S" name)

(* Epoch fields default to 0 when absent, so pre-failover frames keep
   decoding: 0 is "no incarnation" — a coordinator's epochs start at 1,
   and a 0 on the wire is simply always-stale (fenced, then repaired by
   the reconcile-at-request rule rather than trusted). *)
let epoch_field name j =
  match Option.bind (Json.member name j) Json.get_int with Some e -> e | None -> 0

let of_frame { Wire.tag; payload } =
  let* j = Json.of_string payload in
  match tag with
  | 'h' ->
      let* version = field "version" Json.get_int j in
      let* name = field "name" Json.get_str j in
      let* domains = field "domains" Json.get_int j in
      Ok (Hello { version; name; domains; last_epoch = epoch_field "last_epoch" j })
  | 'w' ->
      let* version = field "version" Json.get_int j in
      let* spec_json = field "spec" Option.some j in
      let* spec = Spec.of_json spec_json in
      let* sup_json = field "supervision" Option.some j in
      let* hb_interval_s = field "hb_interval_s" Json.get_float j in
      Ok
        (Welcome
           {
             version;
             epoch = epoch_field "epoch" j;
             spec;
             supervision = supervision_of_json sup_json;
             hb_interval_s;
           })
  | 'r' -> Ok Request
  | 'l' ->
      let* lease = field "lease" Json.get_int j in
      let* lo = field "lo" Json.get_int j in
      let* hi = field "hi" Json.get_int j in
      let* done_list = field "done" Json.get_list j in
      let done_ids = List.filter_map Json.get_int done_list in
      if List.length done_ids <> List.length done_list then
        Error "codec: non-integer trial id in done list"
      else Ok (Lease { lease; epoch = epoch_field "epoch" j; lo; hi; done_ids })
  | 'R' ->
      let* r = Journal.of_json j in
      Ok (Result r)
  | 'c' ->
      let* lease = field "lease" Json.get_int j in
      Ok (Complete { lease; epoch = epoch_field "epoch" j })
  | 'b' ->
      (* legacy beats carry "{}"; new ones may piggyback a telemetry
         snapshot and a span batch — both optional either way *)
      Ok (Heartbeat { snapshot = Json.member "snapshot" j; spans = Json.member "spans" j })
  | 'z' ->
      let* seconds = field "seconds" Json.get_float j in
      Ok (Wait { seconds })
  | 'y' ->
      let* reason = field "reason" Json.get_str j in
      Ok (Bye { reason })
  | c -> Error (Printf.sprintf "codec: unknown message tag %C" c)

let pp ppf = function
  | Hello { version; name; domains; last_epoch } ->
      Fmt.pf ppf "hello v%d %s (%d domains)%s" version name domains
        (if last_epoch > 0 then Fmt.str " last epoch %d" last_epoch else "")
  | Welcome { version; epoch; hb_interval_s; _ } ->
      Fmt.pf ppf "welcome v%d epoch %d (heartbeat every %gs)" version epoch hb_interval_s
  | Request -> Fmt.string ppf "request"
  | Lease { lease; epoch; lo; hi; done_ids } ->
      Fmt.pf ppf "lease #%d@%d [%d,%d) (%d already done)" lease epoch lo hi
        (List.length done_ids)
  | Result r -> Fmt.pf ppf "result trial %d" r.Journal.trial
  | Complete { lease; epoch } -> Fmt.pf ppf "complete #%d@%d" lease epoch
  | Heartbeat { snapshot; spans } ->
      Fmt.pf ppf "heartbeat%s%s"
        (if snapshot <> None then "+telemetry" else "")
        (if spans <> None then "+spans" else "")
  | Wait { seconds } -> Fmt.pf ppf "wait %gs" seconds
  | Bye { reason } -> Fmt.pf ppf "bye (%s)" reason
