(* The read-only observability surface as pure response building: a
   Core.view (plus an event tail and a metrics exposition) in, a typed
   response out. No sockets, no clocks, no globals — the HTTP driver
   and the netsim probes both call [respond], so the JSON the live
   endpoint serves is exactly the JSON the golden tests pin. *)

module Campaign = Ffault_campaign
module Json = Campaign.Json
module Pool = Campaign.Pool
module Events = Ffault_telemetry.Events

type source = {
  view : unit -> Core.view;
  events : limit:int -> Events.event list;
  metrics : unit -> string;
}

type response = { code : int; content_type : string; body : string }

let events_limit = 256

let json_response ?(code = 200) j =
  { code; content_type = "application/json"; body = Json.to_string j ^ "\n" }

(* Rate over the engine clock's elapsed time — the same arithmetic the
   final Pool summary uses, so the live number converges to the
   reported one. *)
let rate (v : Core.view) =
  Pool.trials_rate ~executed:v.Core.vw_executed ~wall_s:v.Core.vw_elapsed_s

let status_json (v : Core.view) =
  let trials_per_s = rate v in
  let remaining = v.Core.vw_total - v.Core.vw_done in
  Json.Obj
    [
      ("version", Json.Int 1);
      ("campaign", Json.Str v.Core.vw_campaign);
      ("protocol", Json.Str v.Core.vw_protocol);
      ("epoch", Json.Int v.Core.vw_epoch);
      ("restarts", Json.Int v.Core.vw_restarts);
      ("stale_completes", Json.Int v.Core.vw_stale_completes);
      ("state", Json.Str (if v.Core.vw_running then "running" else "done"));
      ("total", Json.Int v.Core.vw_total);
      ("done", Json.Int v.Core.vw_done);
      ("skipped", Json.Int v.Core.vw_skipped);
      ("executed", Json.Int v.Core.vw_executed);
      ("failures", Json.Int v.Core.vw_failures);
      ("timeouts", Json.Int v.Core.vw_timeouts);
      ("retried", Json.Int v.Core.vw_retried);
      ("quarantined", Json.Int v.Core.vw_quarantined);
      ("elapsed_s", Json.Float v.Core.vw_elapsed_s);
      ("trials_per_s", Json.Float trials_per_s);
      ( "eta_s",
        if v.Core.vw_running && trials_per_s > 0.0 then
          Json.Float (float_of_int remaining /. trials_per_s)
        else Json.Null );
      ("workers_connected", Json.Int v.Core.vw_workers_connected);
      ( "leases",
        Json.Obj
          [
            ("outstanding", Json.Int v.Core.vw_leases_outstanding);
            ("pending", Json.Int v.Core.vw_leases_pending);
            ("granted", Json.Int v.Core.vw_leases_granted);
            ("completed", Json.Int v.Core.vw_leases_completed);
            ("expired", Json.Int v.Core.vw_leases_expired);
          ] );
    ]

let workers_json (v : Core.view) =
  (* stale is judged by heartbeat age alone, not connectedness: a
     SIGKILLed worker's socket EOFs promptly on localhost but can
     linger on a real network, and either way the operator wants the
     age-based verdict the watchdog will act on *)
  let stale_after = 2.0 *. v.Core.vw_hb_interval_s in
  let worker (w : Core.wview) =
    Json.Obj
      ([
         ("name", Json.Str w.Core.v_name);
         ("peer", Json.Str w.Core.v_peer);
         ("domains", Json.Int w.Core.v_domains);
         ("connected", Json.Bool w.Core.v_connected);
         ( "hb_age_s",
           match w.Core.v_hb_age_s with Some a -> Json.Float a | None -> Json.Null );
         ( "stale",
           Json.Bool
             (match w.Core.v_hb_age_s with
             | Some a -> a > stale_after
             | None -> false) );
         ("granted", Json.Int w.Core.v_granted);
         ("completed", Json.Int w.Core.v_completed);
         ("expired", Json.Int w.Core.v_expired);
         ("results", Json.Int w.Core.v_results);
         ("deduped", Json.Int w.Core.v_deduped);
         ("reconnects", Json.Int w.Core.v_reconnects);
       ]
      @
      match w.Core.v_telemetry with Some t -> [ ("telemetry", t) ] | None -> [])
  in
  Json.Obj
    [
      ("version", Json.Int 1);
      ("epoch", Json.Int v.Core.vw_epoch);
      ("restarts", Json.Int v.Core.vw_restarts);
      ("hb_interval_s", Json.Float v.Core.vw_hb_interval_s);
      ("lease_timeout_s", Json.Float v.Core.vw_lease_timeout_s);
      ("workers", Json.List (List.map worker v.Core.vw_workers));
    ]

let events_body events =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"version\":1,\"events\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Events.json_line e))
    events;
  Buffer.add_string b "]}\n";
  Buffer.contents b

let not_found path =
  json_response ~code:404
    (Json.Obj
       [
         ("error", Json.Str (Printf.sprintf "no such endpoint: %s" path));
         ( "endpoints",
           Json.List
             (List.map (fun p -> Json.Str p) [ "/status"; "/workers"; "/metrics"; "/events" ])
         );
       ])

let respond src path =
  (* tolerate a query string: /events?x=y serves /events *)
  let path =
    match String.index_opt path '?' with
    | Some i -> String.sub path 0 i
    | None -> path
  in
  match path with
  | "/" | "/status" -> json_response (status_json (src.view ()))
  | "/workers" -> json_response (workers_json (src.view ()))
  | "/metrics" ->
      {
        code = 200;
        content_type = "text/plain; version=0.0.4";
        body = src.metrics ();
      }
  | "/events" ->
      {
        code = 200;
        content_type = "application/json";
        body = events_body (src.events ~limit:events_limit);
      }
  | p -> not_found p
