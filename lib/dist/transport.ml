module Metrics = Ffault_telemetry.Metrics

let m_bytes_sent = Metrics.counter "dist.bytes_sent"
let m_bytes_recv = Metrics.counter "dist.bytes_recv"
let m_frames_sent = Metrics.counter "dist.frames_sent"
let m_frames_recv = Metrics.counter "dist.frames_recv"

type endpoint = Unix_sock of string | Tcp of string * int

(* A port string must be all digits (int_of_string_opt would accept
   "0x50", "1_0" and "+80" — none of which anyone means on a CLI). *)
let port_of_string port =
  if port = "" then Error "endpoint: tcp: missing port after host"
  else if not (String.for_all (fun c -> c >= '0' && c <= '9') port) then
    Error (Printf.sprintf "endpoint: tcp port %S is not a number" port)
  else
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 -> Ok p
    | _ -> Error (Printf.sprintf "endpoint: tcp port %S out of range 1-65535" port)

(* [HOST] / [[v6]] with the port already split off. *)
let host_of_string host =
  let n = String.length host in
  if n = 0 then Error "endpoint: tcp: empty host"
  else if host.[0] = '[' then
    if n >= 3 && host.[n - 1] = ']' then Ok (String.sub host 1 (n - 2))
    else Error (Printf.sprintf "endpoint: bad IPv6 host %S — expected [ADDR]" host)
  else if String.contains host ':' then
    Error
      (Printf.sprintf "endpoint: ambiguous host %S — bracket IPv6 as tcp:[ADDR]:PORT"
         host)
  else Ok host

let endpoint_of_string s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
      let path = String.sub s (i + 1) (String.length s - i - 1) in
      if path = "" then Error "endpoint: unix: needs a socket path"
      else Ok (Unix_sock path)
  | Some i when String.sub s 0 i = "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | None -> Error "endpoint: tcp: needs HOST:PORT"
      | Some j -> (
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          match host_of_string host with
          | Error _ as e -> e
          | Ok host -> (
              match port_of_string port with
              | Error _ as e -> e
              | Ok p -> Ok (Tcp (host, p)))))
  | _ ->
      Error
        (Printf.sprintf "endpoint: %S — expected unix:PATH or tcp:HOST:PORT" s)

let endpoint_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) when String.contains host ':' ->
      Printf.sprintf "tcp:[%s]:%d" host port
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let pp_endpoint ppf e = Fmt.string ppf (endpoint_to_string e)

let sockaddr_of = function
  | Unix_sock path -> Ok (Unix.ADDR_UNIX path)
  | Tcp (host, port) -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          Error (Printf.sprintf "endpoint: no address for host %S" host)
      | h -> Ok (Unix.ADDR_INET (h.Unix.h_addr_list.(0), port))
      | exception Not_found -> (
          match Unix.inet_addr_of_string host with
          | addr -> Ok (Unix.ADDR_INET (addr, port))
          | exception Failure _ -> Error (Printf.sprintf "endpoint: unknown host %S" host)))

let domain_of = Unix.domain_of_sockaddr

(* ---- connections ---- *)

type conn = {
  c_fd : Unix.file_descr;
  c_peer : string;
  send_lock : Mutex.t;
  decoder : Wire.Decoder.t;
  read_buf : Bytes.t;
  mutable stash : Wire.frame list;  (* decoded, not yet returned by recv_msg *)
  mutable closed : bool;
}

let conn_of_fd ~peer fd =
  {
    c_fd = fd;
    c_peer = peer;
    send_lock = Mutex.create ();
    decoder = Wire.Decoder.create ();
    read_buf = Bytes.create 65_536;
    stash = [];
    closed = false;
  }

let fd c = c.c_fd
let peer c = c.c_peer

let close c =
  if not c.closed then begin
    c.closed <- true;
    try Unix.close c.c_fd with Unix.Unix_error _ -> ()
  end

let send c frame =
  let bytes = Wire.encode frame in
  Mutex.lock c.send_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.send_lock)
    (fun () ->
      if c.closed then Error "send: connection closed"
      else
        match
          let len = String.length bytes in
          let off = ref 0 in
          while !off < len do
            off :=
              !off
              + Unix.write_substring c.c_fd bytes !off (len - !off)
          done
        with
        | () ->
            Metrics.add m_bytes_sent (String.length bytes);
            Metrics.incr m_frames_sent;
            Ok ()
        | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "send: %s" (Unix.error_message e)))

let send_msg c msg = send c (Codec.to_frame msg)

let drain_frames c =
  let rec pop acc =
    match Wire.Decoder.next c.decoder with
    | Ok (Some f) ->
        Metrics.incr m_frames_recv;
        pop (f :: acc)
    | Ok None -> Ok (List.rev acc)
    | Error m -> Error m
  in
  pop []

let recv_step c =
  match Unix.read c.c_fd c.read_buf 0 (Bytes.length c.read_buf) with
  | 0 -> `Closed
  | n -> (
      Metrics.add m_bytes_recv n;
      Wire.Decoder.feed c.decoder (Bytes.sub_string c.read_buf 0 n);
      match drain_frames c with
      | Ok frames -> `Frames frames
      | Error m -> `Error m)
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> `Closed
  | exception Unix.Unix_error (e, _, _) ->
      `Error (Printf.sprintf "recv: %s" (Unix.error_message e))

(* A conn has exactly one reader (the worker's main loop, or the
   coordinator's select loop — which uses recv_step directly), so the
   stash needs no lock. *)
let rec recv_msg c =
  match c.stash with
  | f :: rest -> (
      c.stash <- rest;
      match Codec.of_frame f with Ok m -> `Msg m | Error e -> `Error e)
  | [] -> (
      match recv_step c with
      | `Frames fs ->
          c.stash <- fs;
          recv_msg c
      | (`Closed | `Error _) as other -> other)

(* ---- client ---- *)

let connect endpoint =
  match sockaddr_of endpoint with
  | Error _ as e -> e
  | Ok addr -> (
      let fd = Unix.socket (domain_of addr) Unix.SOCK_STREAM 0 in
      match
        Unix.connect fd addr;
        (match addr with
        | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
        | Unix.ADDR_UNIX _ -> ())
      with
      | () -> Ok (conn_of_fd ~peer:(endpoint_to_string endpoint) fd)
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "connect %s: %s" (endpoint_to_string endpoint)
               (Unix.error_message e)))

(* ---- server ---- *)

type listener = { l_fd : Unix.file_descr; l_endpoint : endpoint; mutable l_closed : bool }

let listen ?(backlog = 64) endpoint =
  (match endpoint with
  | Unix_sock path when Sys.file_exists path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ());
  match sockaddr_of endpoint with
  | Error _ as e -> e
  | Ok addr -> (
      let fd = Unix.socket (domain_of addr) Unix.SOCK_STREAM 0 in
      match
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd addr;
        Unix.listen fd backlog
      with
      | () -> Ok { l_fd = fd; l_endpoint = endpoint; l_closed = false }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "listen %s: %s" (endpoint_to_string endpoint)
               (Unix.error_message e)))

let listener_fd l = l.l_fd

let accept l =
  match Unix.accept l.l_fd with
  | fd, addr ->
      (match addr with
      | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
      | Unix.ADDR_UNIX _ -> ());
      let peer =
        match addr with
        | Unix.ADDR_UNIX _ -> endpoint_to_string l.l_endpoint
        | Unix.ADDR_INET (a, p) ->
            Printf.sprintf "tcp:%s:%d" (Unix.string_of_inet_addr a) p
      in
      Ok (conn_of_fd ~peer fd)
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "accept: %s" (Unix.error_message e))

let close_listener l =
  if not l.l_closed then begin
    l.l_closed <- true;
    (try Unix.close l.l_fd with Unix.Unix_error _ -> ());
    match l.l_endpoint with
    | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ()
  end
