(** The distributed-campaign coordinator: [ffault campaign serve].

    One process owns the campaign directory — manifest, journal,
    telemetry — and hands the trial grid out to {!Worker} processes as
    leases over the wire ({!Codec}). The journal stays the single
    source of truth, which is what makes recovery exactly-once:

    - a lease is only {e retired} once every one of its trials is
      journaled and the worker's [Complete] frame arrives;
    - a worker death (socket EOF, error, or heartbeat silence judged by
      {!Ffault_supervise.Watchdog}) merely requeues its shards, and the
      re-lease carries the trial ids already journaled so the next
      worker skips them;
    - a result for an already-journaled trial — a zombie worker
      streaming under an expired lease — is dropped before the journal
      sees it (deduped by trial id, counted in [dist.results_deduped]).

    So trials may {e execute} more than once across worker crashes, but
    each is {e journaled} exactly once — the same discipline
    single-process resume already guarantees, now over crash-prone
    distributed workers (cf. Golab's recoverable consensus).

    The loop is single-threaded ([select] over the listener and every
    worker socket), so journal writes, lease bookkeeping and the
    checkpoint mask need no further synchronization.

    All of the message handling lives in the transport-independent
    {!Core} engine; this module is the socket driver around it (the
    netsim driver in [lib/netsim] reuses the same engine on a simulated
    network with virtual time). *)

type config = {
  endpoint : Transport.endpoint;
  lease_trials : int;  (** trials per lease shard *)
  lease_timeout_s : float;
      (** a lease silent this long expires; also the watchdog's stall
          bound for worker connections *)
  hb_interval_s : float;  (** heartbeat cadence imposed on workers *)
  max_workers : int;  (** concurrent connections (heartbeat slots) *)
  supervision : Codec.supervision;  (** forwarded to every worker *)
}

val config :
  ?lease_trials:int ->
  ?lease_timeout_s:float ->
  ?hb_interval_s:float ->
  ?max_workers:int ->
  ?supervision:Codec.supervision ->
  Transport.endpoint ->
  config
(** Defaults: 1000 trials per lease, 30 s lease timeout, heartbeat
    every 2 s, 64 workers, no supervision.
    @raise Invalid_argument on non-positive sizes/timeouts or a
    heartbeat interval not under the lease timeout. *)

(** Per-worker statistics, persisted as [workers.json] and rendered by
    [campaign report]'s Workers section. Workers are keyed by their
    hello name; a name reconnecting (its process restarted, or its
    connection was dropped by the watchdog) counts a reconnect. *)
type worker_stats = Core.worker_stats = {
  w_name : string;
  w_peer : string;  (** last known address *)
  w_domains : int;
  w_granted : int;
  w_completed : int;
  w_expired : int;  (** leases lost to disconnect or heartbeat silence *)
  w_results : int;  (** records journaled from this worker *)
  w_deduped : int;  (** zombie results dropped by trial-id dedup *)
  w_reconnects : int;
  w_telemetry : Ffault_campaign.Json.t option;
      (** last telemetry snapshot piggybacked on a heartbeat *)
}

type summary = Core.summary = {
  pool : Ffault_campaign.Pool.summary;  (** same shape as a local run *)
  workers : worker_stats list;
  epoch : int;  (** the finishing incarnation ([owner.json]) *)
  leases_granted : int;
  leases_completed : int;
  leases_expired : int;
  worker_spans : (string * Ffault_campaign.Json.t list) list;
      (** per-worker Chrome span events shipped on heartbeats,
          name-sorted; feeds [ffault trace merge] *)
}

val workers_json : summary -> Ffault_campaign.Json.t
(** The [workers.json] document ({!serve} writes it; exposed for
    tests). *)

val classify : string -> Ffault_telemetry.Events.severity
(** Severity grade for an [on_event] message (lease expiry, reclaims,
    journal holes and drops are [Warn]; the rest [Info]). Exposed so
    the netsim driver grades identically and the [/events] goldens
    cover the real mapping. *)

val serve :
  ?resume:bool ->
  ?observe:(Ffault_campaign.Journal.record -> unit) ->
  ?on_skip:(unit -> unit) ->
  ?on_warn:(string -> unit) ->
  ?on_event:(string -> unit) ->
  ?status:Transport.endpoint ->
  root:string ->
  config ->
  Ffault_campaign.Spec.t ->
  (summary, string) result
(** Run the campaign to completion: listen, lease, journal, and return
    once every trial id is journaled (workers get a [Bye] and the
    listener closes). [observe] sees each record after its journal
    append; [on_skip] fires once per already-journaled trial on resume
    (both as in {!Ffault_campaign.Pool.run_dir}, so the live progress
    line plugs in unchanged). [on_event] receives one-line
    join/leave/lease lifecycle messages; the same messages also land,
    severity-graded, in a structured {!Ffault_telemetry.Events} log
    that is streamed to [<dir>/events.jsonl] and served by [/events].
    [status] additionally serves the read-only {!Status} endpoint
    ([/status], [/workers], [/metrics], [/events]) over {!Http} from
    inside the same select loop. Also writes [telemetry.json]
    (including the [dist.*] counters) and [workers.json] on success. *)
