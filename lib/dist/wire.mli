(** Length-prefixed frame layer of the distributed-campaign protocol.

    A frame on the wire is [4-byte big-endian length][1-byte tag][payload]:
    the length counts the tag byte plus the payload, so a frame is never
    empty, and the 4-byte prefix bounds what a peer can make us buffer.
    Tags name message kinds ({!Codec}); payloads are single-line JSON
    rendered by {!Ffault_campaign.Json} — the same dialect the campaign
    artifacts already use, so no new dependencies ride in.

    Decoding is incremental and total: {!Decoder.feed} takes whatever
    the socket produced, {!Decoder.next} pops complete frames, and a
    malformed prefix (zero or oversized length) is an [Error] — the
    connection is unrecoverable past it, never an exception. *)

val version : int
(** Protocol version, 1. Exchanged in the hello/welcome handshake; a
    coordinator refuses workers speaking any other version. *)

val max_frame_bytes : int
(** Largest admissible frame body (tag + payload): 16 MiB. A length
    prefix above this is a framing error, not an allocation request. *)

type frame = { tag : char; payload : string }

val encode : frame -> string
(** The frame's wire bytes.
    @raise Invalid_argument if the payload exceeds {!max_frame_bytes}. *)

(** Incremental frame extraction from a byte stream. *)
module Decoder : sig
  type t

  val create : unit -> t

  val feed : t -> string -> unit
  (** Append raw bytes (any split — a frame may arrive one byte at a
      time, or many frames in one read). *)

  val next : t -> (frame option, string) result
  (** Pop the next complete frame. [Ok None] means the buffered bytes
      are a (possibly empty) prefix of a valid frame — feed more.
      [Error] means the stream is torn (zero-length or oversized
      prefix); the decoder is poisoned and every later [next] returns
      the same error. *)

  val buffered : t -> int
  (** Bytes fed but not yet consumed by complete frames. *)
end
