module Campaign = Ffault_campaign
module Json = Campaign.Json
module Spec = Campaign.Spec
module Journal = Campaign.Journal
module Checkpoint = Campaign.Checkpoint
module Pool = Campaign.Pool
module Grid = Campaign.Grid
module Heartbeat = Ffault_supervise.Heartbeat
module Watchdog = Ffault_supervise.Watchdog
module Clock = Ffault_runtime.Clock
module Metrics = Ffault_telemetry.Metrics

let m_leases_granted = Metrics.counter "dist.leases_granted"
let m_leases_completed = Metrics.counter "dist.leases_completed"
let m_leases_expired = Metrics.counter "dist.leases_expired"
let m_results = Metrics.counter "dist.results"
let m_deduped = Metrics.counter "dist.results_deduped"
let m_connects = Metrics.counter "dist.worker_connects"
let m_reconnects = Metrics.counter "dist.worker_reconnects"
let m_stale_completes = Metrics.counter "dist.stale_completes"
let g_workers = Metrics.gauge "dist.workers_connected"

type 'c io = {
  peer : 'c -> string;
  send : 'c -> Codec.msg -> (unit, string) result;
  close : 'c -> unit;
}

type worker_stats = {
  w_name : string;
  w_peer : string;
  w_domains : int;
  w_granted : int;
  w_completed : int;
  w_expired : int;
  w_results : int;
  w_deduped : int;
  w_reconnects : int;
  w_telemetry : Json.t option;
}

type summary = {
  pool : Pool.summary;
  workers : worker_stats list;
  epoch : int;
  leases_granted : int;
  leases_completed : int;
  leases_expired : int;
  worker_spans : (string * Json.t list) list;
}

(* ---- mutable per-worker bookkeeping (keyed by hello name) ---- *)

type wstat = {
  name : string;
  mutable peer : string;
  mutable domains : int;
  mutable granted : int;
  mutable completed : int;
  mutable expired : int;
  mutable results : int;
  mutable deduped : int;
  mutable reconnects : int;
  mutable connected : bool;
  mutable last_seen_ns : int;  (* engine clock at the last frame; -1 = never *)
  mutable telemetry : Json.t option;  (* last piggybacked snapshot *)
  mutable spans_rev : Json.t list;  (* piggybacked span batches, newest first *)
}

let stats_of_wstat w =
  {
    w_name = w.name;
    w_peer = w.peer;
    w_domains = w.domains;
    w_granted = w.granted;
    w_completed = w.completed;
    w_expired = w.expired;
    w_results = w.results;
    w_deduped = w.deduped;
    w_reconnects = w.reconnects;
    w_telemetry = w.telemetry;
  }

(* Fleet-wide counters: per-worker snapshots summed by counter name.
   Gauges and histograms stay per-worker (summing a gauge is
   meaningless); counters are flows, so the sum is the fleet total. *)
let merge_counter_snapshots snaps =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun snap ->
      match Json.member "counters" snap with
      | Some (Json.Obj fields) ->
          List.iter
            (fun (name, v) ->
              match Json.get_int v with
              | Some i ->
                  Hashtbl.replace tbl name
                    (i + Option.value ~default:0 (Hashtbl.find_opt tbl name))
              | None -> ())
            fields
      | _ -> ())
    snaps;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let workers_json s =
  let fleet =
    merge_counter_snapshots (List.filter_map (fun w -> w.w_telemetry) s.workers)
  in
  Json.Obj
    ([
       ("version", Json.Int 2);
       ("epoch", Json.Int s.epoch);
       ("restarts", Json.Int (max 0 (s.epoch - 1)));
       ( "leases",
         Json.Obj
           [
             ("granted", Json.Int s.leases_granted);
             ("completed", Json.Int s.leases_completed);
             ("expired", Json.Int s.leases_expired);
           ] );
       ( "workers",
         Json.List
           (List.map
              (fun w ->
                Json.Obj
                  ([
                     ("name", Json.Str w.w_name);
                     ("peer", Json.Str w.w_peer);
                     ("domains", Json.Int w.w_domains);
                     ("granted", Json.Int w.w_granted);
                     ("completed", Json.Int w.w_completed);
                     ("expired", Json.Int w.w_expired);
                     ("results", Json.Int w.w_results);
                     ("deduped", Json.Int w.w_deduped);
                     ("reconnects", Json.Int w.w_reconnects);
                   ]
                  @
                  match w.w_telemetry with
                  | Some t -> [ ("telemetry", t) ]
                  | None -> []))
              s.workers) );
     ]
    @
    (* merged per-worker counters; absent when no worker piggybacked a
       snapshot, so pre-observability artifacts keep their old shape *)
    match fleet with
    | [] -> []
    | fleet ->
        [ ("fleet", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) fleet)) ])

(* ---- the engine ---- *)

type 'c client = {
  c_conn : 'c;
  mutable cname : string option;  (* set by Hello *)
  mutable slot : int;  (* heartbeat slot; -1 before Hello *)
  mutable c_dropped : bool;
}

type 'c t = {
  io : 'c io;
  append : Journal.record -> unit;
  st : Checkpoint.t;
  spec : Spec.t;
  clock : Clock.t;
  created_ns : int;  (* clock at create: elapsed time base for rates *)
  total : int;
  skipped : int;
  epoch : int;  (* this incarnation (owner.json); grants carry it *)
  fence_epochs : bool;
  lease_timeout_s : float;
  hb_interval_s : float;
  supervision : Codec.supervision;
  verify_complete : bool;
  observe : Journal.record -> unit;
  on_event : string -> unit;
  on_requeue : string -> int -> unit;
  on_drop : 'c client -> unit;
  leases : Lease.t;
  hb : Heartbeat.t;
  wd : Watchdog.t;
  mutable free_slots : int list;
  mutable clients : 'c client list;
  wstats : (string, wstat) Hashtbl.t;
  mutable executed : int;
  mutable failures : int;
  mutable timeouts : int;
  mutable retried : int;
  mutable quarantined : int;
  mutable shrunk : int;
  mutable stale_completes : int;  (* Completes fenced for a stale epoch *)
}

let create ?(clock = Clock.monotonic) ?(epoch = 1) ?(fence_epochs = true)
    ?(verify_complete = true) ?(observe = fun _ -> ()) ?(on_event = fun _ -> ())
    ?(on_requeue = fun _ _ -> ()) ?(on_drop = fun _ -> ())
    ~io ~append ~st ~spec ~lease_trials ~lease_timeout_s ~hb_interval_s
    ~max_workers ~supervision () =
  if epoch < 1 then invalid_arg "Core.create: epoch < 1";
  let total = Grid.total_trials spec in
  let leases =
    Lease.create ~clock ~total ~lease_trials
      ~timeout_ns:(int_of_float (lease_timeout_s *. 1e9))
      ()
  in
  (* Recovery: whatever the journal already proves finished is never
     granted again. A fresh campaign pre-retires nothing; a restarted
     incarnation rebuilds its retired set here, from the journal's
     done-mask — the lease table itself died with the old process and
     is deliberately not trusted (cf. recoverable consensus: private
     state is lost on crash, only the persistent log survives). *)
  let recovered = ref 0 in
  for shard = 0 to Lease.n_shards leases - 1 do
    let lo, hi = Lease.shard_range leases shard in
    let full = ref (hi > lo) in
    for trial = lo to hi - 1 do
      if not (Checkpoint.is_done st trial) then full := false
    done;
    if !full then begin
      Lease.retire leases ~shard;
      incr recovered
    end
  done;
  if !recovered > 0 then
    on_event
      (Fmt.str "recovery: %d of %d shard(s) already complete in the journal"
         !recovered (Lease.n_shards leases));
  let hb = Heartbeat.create ~clock ~slots:max_workers () in
  let wd =
    Watchdog.create ~heartbeat:hb
      ~stall_ns:(int_of_float (lease_timeout_s *. 1e9))
      ()
  in
  {
    io;
    append;
    st;
    spec;
    clock;
    created_ns = Clock.now_ns clock;
    total;
    skipped = Checkpoint.completed st;
    epoch;
    fence_epochs;
    lease_timeout_s;
    hb_interval_s;
    supervision;
    verify_complete;
    observe;
    on_event;
    on_requeue;
    on_drop;
    leases;
    hb;
    wd;
    free_slots = List.init max_workers Fun.id;
    clients = [];
    wstats = Hashtbl.create 16;
    executed = 0;
    failures = 0;
    timeouts = 0;
    retried = 0;
    quarantined = 0;
    shrunk = 0;
    stale_completes = 0;
  }

let conn c = c.c_conn
let dropped c = c.c_dropped

let add_client t conn =
  let c = { c_conn = conn; cname = None; slot = -1; c_dropped = false } in
  t.clients <- c :: t.clients;
  Metrics.add_gauge g_workers 1;
  c

let wstat_of t name =
  match Hashtbl.find_opt t.wstats name with
  | Some w -> w
  | None ->
      let w =
        {
          name;
          peer = "?";
          domains = 0;
          granted = 0;
          completed = 0;
          expired = 0;
          results = 0;
          deduped = 0;
          reconnects = -1 (* first connect is not a reconnect *);
          connected = false;
          last_seen_ns = -1;
          telemetry = None;
          spans_rev = [];
        }
      in
      Hashtbl.replace t.wstats name w;
      w

let stat_of_client t c = Option.map (wstat_of t) c.cname
let is_done t = Checkpoint.completed t.st >= t.total

let drop_leases_of t ~why name =
  match Lease.fail t.leases ~owner:name with
  | [] -> ()
  | lost ->
      let w = wstat_of t name in
      w.expired <- w.expired + List.length lost;
      Metrics.add m_leases_expired (List.length lost);
      List.iter
        (fun (l : Lease.lease) ->
          t.on_requeue name l.Lease.id;
          t.on_event
            (Fmt.str "lease #%d [%d,%d) reclaimed from %s (%s)" l.Lease.id l.Lease.lo
               l.Lease.hi name why))
        lost

let drop_client t ~why c =
  if not c.c_dropped then begin
    c.c_dropped <- true;
    t.clients <- List.filter (fun c' -> c' != c) t.clients;
    (match c.cname with
    | Some name ->
        (wstat_of t name).connected <- false;
        t.on_event (Fmt.str "worker %s left (%s)" name why);
        drop_leases_of t ~why name
    | None -> ());
    if c.slot >= 0 then begin
      Watchdog.detach t.wd ~slot:c.slot;
      t.free_slots <- c.slot :: t.free_slots;
      c.slot <- -1
    end;
    Metrics.add_gauge g_workers (-1);
    t.on_drop c;
    t.io.close c.c_conn
  end

let client_closed t c ~why = drop_client t ~why c

let send_or_drop t c msg =
  match t.io.send c.c_conn msg with
  | Ok () -> ()
  | Error why -> drop_client t ~why c

let done_ids_in t lo hi =
  let ids = ref [] in
  for id = hi - 1 downto lo do
    if Checkpoint.is_done t.st id then ids := id :: !ids
  done;
  !ids

let missing_in t (l : Lease.lease) =
  let n = ref 0 in
  for trial = l.Lease.lo to l.Lease.hi - 1 do
    if not (Checkpoint.is_done t.st trial) then incr n
  done;
  !n

(* A Request from an owner we still hold live leases for means the
   worker moved on without us seeing its Complete — lost or reordered
   frames. On an ordered socket stream Complete always precedes the
   next Request, so this never fires there; under simulated loss it is
   what keeps a shard from being hostage to a chatty worker that no
   longer knows it owns it. Retire what the journal proves finished,
   requeue the rest (the worker will not re-send those results). *)
let reconcile t name =
  List.iter
    (fun (owner, (l : Lease.lease)) ->
      if owner = name then begin
        let w = wstat_of t name in
        let missing = missing_in t l in
        if missing = 0 then begin
          ignore (Lease.complete t.leases ~id:l.Lease.id);
          w.completed <- w.completed + 1;
          Metrics.incr m_leases_completed;
          t.on_event
            (Fmt.str "lease #%d [%d,%d) of %s retired at request (complete lost in flight)"
               l.Lease.id l.Lease.lo l.Lease.hi name)
        end
        else begin
          ignore (Lease.revoke t.leases ~id:l.Lease.id);
          w.expired <- w.expired + 1;
          Metrics.incr m_leases_expired;
          t.on_requeue name l.Lease.id;
          t.on_event
            (Fmt.str
               "lease #%d [%d,%d) of %s reconciled at request: %d trial(s) unjournaled — requeued"
               l.Lease.id l.Lease.lo l.Lease.hi name missing)
        end
      end)
    (Lease.live t.leases)

let handle_msg t c msg =
  (* any frame is liveness *)
  (match c.cname with
  | Some name ->
      if c.slot >= 0 then Heartbeat.beat t.hb ~slot:c.slot;
      (wstat_of t name).last_seen_ns <- Clock.now_ns t.clock;
      Lease.renew t.leases ~owner:name
  | None -> ());
  match (msg : Codec.msg) with
  | Codec.Hello { version; name; domains; last_epoch } ->
      if version <> Wire.version then begin
        send_or_drop t c
          (Codec.Bye
             {
               reason =
                 Fmt.str "version mismatch: coordinator speaks %d, you speak %d"
                   Wire.version version;
             });
        drop_client t ~why:"version mismatch" c
      end
      else begin
        let w = wstat_of t name in
        w.peer <- t.io.peer c.c_conn;
        w.domains <- domains;
        w.connected <- true;
        w.last_seen_ns <- Clock.now_ns t.clock;
        w.reconnects <- w.reconnects + 1;
        if w.reconnects > 0 then Metrics.incr m_reconnects;
        Metrics.incr m_connects;
        c.cname <- Some name;
        (match t.free_slots with
        | slot :: rest ->
            t.free_slots <- rest;
            c.slot <- slot;
            Heartbeat.beat t.hb ~slot
        | [] -> () (* more workers than slots: liveness by lease expiry only *));
        t.on_event
          (Fmt.str "worker %s joined from %s (%d domains)%s%s" name w.peer domains
             (if w.reconnects > 0 then Fmt.str " — reconnect #%d" w.reconnects else "")
             (if last_epoch > 0 && last_epoch <> t.epoch then
                Fmt.str " — returning from epoch %d" last_epoch
              else ""));
        send_or_drop t c
          (Codec.Welcome
             {
               version = Wire.version;
               epoch = t.epoch;
               spec = t.spec;
               supervision = t.supervision;
               hb_interval_s = t.hb_interval_s;
             })
      end
  | Codec.Request -> (
      match c.cname with
      | None -> drop_client t ~why:"request before hello" c
      | Some name ->
          reconcile t name;
          if is_done t then send_or_drop t c (Codec.Bye { reason = "campaign complete" })
          else (
            match Lease.grant t.leases ~owner:name with
            | Some l ->
                let w = wstat_of t name in
                w.granted <- w.granted + 1;
                Metrics.incr m_leases_granted;
                t.on_event
                  (Fmt.str "lease #%d [%d,%d) -> %s" l.Lease.id l.Lease.lo l.Lease.hi
                     name);
                send_or_drop t c
                  (Codec.Lease
                     {
                       lease = l.Lease.id;
                       epoch = t.epoch;
                       lo = l.Lease.lo;
                       hi = l.Lease.hi;
                       done_ids = done_ids_in t l.Lease.lo l.Lease.hi;
                     })
            | None ->
                send_or_drop t c
                  (Codec.Wait { seconds = Float.min 1.0 (t.lease_timeout_s /. 4.0) })))
  | Codec.Result r ->
      let w = stat_of_client t c in
      if r.Journal.trial < 0 || r.Journal.trial >= t.total then
        (* out-of-grid id: protocol violation, not data *)
        drop_client t
          ~why:(Fmt.str "result for trial %d outside the grid" r.Journal.trial)
          c
      else if Checkpoint.is_done t.st r.Journal.trial then begin
        (* zombie worker still streaming an expired lease, or a
           re-run after reclaim — journaled once already, drop *)
        Option.iter (fun w -> w.deduped <- w.deduped + 1) w;
        Metrics.incr m_deduped
      end
      else begin
        t.append r;
        Checkpoint.mark t.st r.Journal.trial ~ok:r.Journal.ok;
        t.executed <- t.executed + 1;
        (match r.Journal.outcome with
        | Journal.Violation -> t.failures <- t.failures + 1
        | Journal.Timeout -> t.timeouts <- t.timeouts + 1
        | Journal.Quarantined -> t.quarantined <- t.quarantined + 1
        | Journal.Pass -> ());
        if r.Journal.retries > 0 then t.retried <- t.retried + r.Journal.retries;
        if r.Journal.witness <> None && r.Journal.outcome = Journal.Violation then
          t.shrunk <- t.shrunk + 1;
        Option.iter (fun w -> w.results <- w.results + 1) w;
        Metrics.incr m_results;
        t.observe r
      end
  | Codec.Complete { lease = id; epoch } ->
      if epoch <> t.epoch then begin
        (* A grant from another incarnation. Lease ids restart at 0 per
           incarnation, so [id] may well collide with a live lease this
           incarnation granted to someone else — the id means nothing
           here. Fence the frame and let the reconcile-at-request rule
           settle the sender's actual leases from the journal; its
           Results (same trial ids) were already dedup-accepted above. *)
        if t.fence_epochs then begin
          t.stale_completes <- t.stale_completes + 1;
          Metrics.incr m_stale_completes;
          t.on_event
            (Fmt.str "complete #%d fenced: grant epoch %d, coordinator epoch %d%s" id
               epoch t.epoch
               (match c.cname with Some n -> Fmt.str " (from %s)" n | None -> ""));
          Option.iter (fun name -> reconcile t name) c.cname
        end
        else
          (* the planted fencing bug (netsim --break-fencing): "the old
             incarnation verified this work before granting, trust its
             Complete" — retiring whatever live lease happens to carry
             the stale id, journal unchecked *)
          match Lease.complete t.leases ~id with
          | `Completed _ ->
              Option.iter (fun w -> w.completed <- w.completed + 1) (stat_of_client t c);
              Metrics.incr m_leases_completed
          | `Unknown -> ()
      end
      else (
        match Lease.find t.leases ~id with
        | None -> () (* stale lease: expired and re-issued; the re-lease owns it *)
        | Some l ->
            let missing = if t.verify_complete then missing_in t l else 0 in
            if missing = 0 then begin
              ignore (Lease.complete t.leases ~id);
              Option.iter (fun w -> w.completed <- w.completed + 1) (stat_of_client t c);
              Metrics.incr m_leases_completed
            end
            else begin
              (* completed with holes: take the shard back *)
              ignore (Lease.revoke t.leases ~id);
              Option.iter (fun w -> w.expired <- w.expired + 1) (stat_of_client t c);
              Metrics.incr m_leases_expired;
              Option.iter (fun name -> t.on_requeue name id) c.cname;
              t.on_event
                (Fmt.str "lease #%d completed with %d trial(s) unjournaled — requeued" id
                   missing)
            end)
  | Codec.Heartbeat { snapshot; spans } -> (
      (* the piggybacked observability payload: latest snapshot wins,
         span batches accumulate for the merged trace *)
      match stat_of_client t c with
      | None -> ()
      | Some w ->
          (match snapshot with Some s -> w.telemetry <- Some s | None -> ());
          (match spans with
          | Some (Json.List batch) -> w.spans_rev <- List.rev_append batch w.spans_rev
          | Some _ | None -> ()))
  | Codec.Bye { reason } -> drop_client t ~why:(Fmt.str "bye: %s" reason) c
  | Codec.Welcome _ | Codec.Lease _ | Codec.Wait _ ->
      drop_client t ~why:"coordinator-bound stream carried a coordinator message" c

let deliver t c frame =
  if not c.c_dropped then
    match Codec.of_frame frame with
    | Ok msg -> handle_msg t c msg
    | Error why -> drop_client t ~why c

let tick t =
  (* lease expiry by silence (the watchdog view feeds the same clock):
     requeue, so the next Request re-issues the shard *)
  List.iter
    (fun (owner, (l : Lease.lease)) ->
      let w = wstat_of t owner in
      w.expired <- w.expired + 1;
      Metrics.incr m_leases_expired;
      t.on_requeue owner l.Lease.id;
      t.on_event
        (Fmt.str "lease #%d [%d,%d) of %s expired (no traffic for %gs)" l.Lease.id
           l.Lease.lo l.Lease.hi owner t.lease_timeout_s))
    (Lease.expire t.leases);
  (* watchdog: drop connections whose heartbeat slot went silent *)
  let stuck = Watchdog.poll t.wd in
  if stuck <> [] then
    List.iter
      (fun c ->
        if c.slot >= 0 && List.mem c.slot stuck then
          drop_client t ~why:"heartbeat silence (watchdog)" c)
      t.clients

let finish t =
  (* the winning worker's [Complete] may still be in flight when the
     last result lands — a fully-journaled live lease is completed
     work, not an expiry *)
  List.iter
    (fun (owner, (l : Lease.lease)) ->
      if missing_in t l = 0 then begin
        ignore (Lease.complete t.leases ~id:l.Lease.id);
        let w = wstat_of t owner in
        w.completed <- w.completed + 1;
        Metrics.incr m_leases_completed
      end)
    (Lease.live t.leases);
  let cs = t.clients in
  List.iter (fun c -> ignore (t.io.send c.c_conn (Codec.Bye { reason = "campaign complete" }))) cs;
  List.iter (fun c -> drop_client t ~why:"campaign complete" c) cs

let summary t ~wall_s =
  let pool =
    {
      Pool.total = t.total;
      executed = t.executed;
      skipped = t.skipped;
      failures = t.failures;
      shrunk = t.shrunk;
      timeouts = t.timeouts;
      retried = t.retried;
      quarantined = t.quarantined;
      wall_s;
      trials_per_s = Pool.trials_rate ~executed:t.executed ~wall_s;
    }
  in
  let workers =
    Hashtbl.fold (fun _ w acc -> stats_of_wstat w :: acc) t.wstats []
    |> List.sort (fun a b -> compare a.w_name b.w_name)
  in
  let worker_spans =
    Hashtbl.fold
      (fun _ w acc ->
        if w.spans_rev = [] then acc else (w.name, List.rev w.spans_rev) :: acc)
      t.wstats []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    pool;
    workers;
    epoch = t.epoch;
    leases_granted = Lease.granted_total t.leases;
    leases_completed = Lease.completed_total t.leases;
    leases_expired = Lease.expired_total t.leases;
    worker_spans;
  }

(* ---- live inspection (feeds Status) ---- *)

type wview = {
  v_name : string;
  v_peer : string;
  v_domains : int;
  v_connected : bool;
  v_hb_age_s : float option;  (* since the last frame; None = never heard *)
  v_granted : int;
  v_completed : int;
  v_expired : int;
  v_results : int;
  v_deduped : int;
  v_reconnects : int;
  v_telemetry : Json.t option;
}

type view = {
  vw_campaign : string;
  vw_protocol : string;
  vw_epoch : int;
  vw_restarts : int;
  vw_stale_completes : int;
  vw_running : bool;
  vw_total : int;
  vw_done : int;  (* journaled, including prior-run skips *)
  vw_skipped : int;
  vw_executed : int;
  vw_failures : int;
  vw_timeouts : int;
  vw_retried : int;
  vw_quarantined : int;
  vw_elapsed_s : float;
  vw_workers_connected : int;
  vw_hb_interval_s : float;
  vw_lease_timeout_s : float;
  vw_leases_outstanding : int;
  vw_leases_pending : int;
  vw_leases_granted : int;
  vw_leases_completed : int;
  vw_leases_expired : int;
  vw_workers : wview list;
}

let view t =
  let now = Clock.now_ns t.clock in
  let workers =
    Hashtbl.fold
      (fun _ w acc ->
        {
          v_name = w.name;
          v_peer = w.peer;
          v_domains = w.domains;
          v_connected = w.connected;
          v_hb_age_s =
            (if w.last_seen_ns < 0 then None
             else Some (float_of_int (now - w.last_seen_ns) /. 1e9));
          v_granted = w.granted;
          v_completed = w.completed;
          v_expired = w.expired;
          v_results = w.results;
          v_deduped = w.deduped;
          v_reconnects = w.reconnects;
          v_telemetry = w.telemetry;
        }
        :: acc)
      t.wstats []
    |> List.sort (fun a b -> compare a.v_name b.v_name)
  in
  {
    vw_campaign = t.spec.Spec.name;
    vw_protocol = t.spec.Spec.protocol;
    vw_epoch = t.epoch;
    vw_restarts = max 0 (t.epoch - 1);
    vw_stale_completes = t.stale_completes;
    vw_running = not (is_done t);
    vw_total = t.total;
    vw_done = Checkpoint.completed t.st;
    vw_skipped = t.skipped;
    vw_executed = t.executed;
    vw_failures = t.failures;
    vw_timeouts = t.timeouts;
    vw_retried = t.retried;
    vw_quarantined = t.quarantined;
    vw_elapsed_s = float_of_int (now - t.created_ns) /. 1e9;
    vw_workers_connected = List.length (List.filter (fun c -> not c.c_dropped) t.clients);
    vw_hb_interval_s = t.hb_interval_s;
    vw_lease_timeout_s = t.lease_timeout_s;
    vw_leases_outstanding = Lease.outstanding t.leases;
    vw_leases_pending = Lease.pending t.leases;
    vw_leases_granted = Lease.granted_total t.leases;
    vw_leases_completed = Lease.completed_total t.leases;
    vw_leases_expired = Lease.expired_total t.leases;
    vw_workers = workers;
  }
