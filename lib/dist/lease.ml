module Clock = Ffault_runtime.Clock

type lease = { id : int; shard : int; lo : int; hi : int }

type outstanding = { lease : lease; owner : string; mutable renewed_at : int }

type t = {
  clock : Clock.t;
  timeout_ns : int;
  total : int;
  lease_trials : int;
  mutable queue : int list;  (* shard indices awaiting (re-)grant, FIFO *)
  live : (int, outstanding) Hashtbl.t;  (* lease id -> grant *)
  retired : Bytes.t;  (* shard done-mask *)
  mutable next_id : int;
  mutable granted_total : int;
  mutable completed_total : int;
  mutable expired_total : int;
}

let create ?(clock = Clock.monotonic) ~total ~lease_trials ~timeout_ns () =
  if total < 0 then invalid_arg "Lease.create: total < 0";
  if lease_trials < 1 then invalid_arg "Lease.create: lease_trials < 1";
  if timeout_ns < 1 then invalid_arg "Lease.create: timeout_ns < 1";
  let shards = (total + lease_trials - 1) / lease_trials in
  {
    clock;
    timeout_ns;
    total;
    lease_trials;
    queue = List.init shards Fun.id;
    live = Hashtbl.create 64;
    retired = Bytes.make (max 1 shards) '\000';
    next_id = 0;
    granted_total = 0;
    completed_total = 0;
    expired_total = 0;
  }

let n_shards t = (t.total + t.lease_trials - 1) / t.lease_trials
let is_retired t shard = Bytes.get t.retired shard = '\001'
let shard_range t shard = (shard * t.lease_trials, min t.total ((shard + 1) * t.lease_trials))

(* Recovery path: a restarted coordinator proves a shard finished from
   the journal alone — there is no lease (and no completion credit) to
   account, the shard is simply never granted again. *)
let retire t ~shard =
  if shard < 0 || shard >= n_shards t then invalid_arg "Lease.retire: bad shard";
  Bytes.set t.retired shard '\001'

let grant t ~owner =
  let rec pop = function
    | [] ->
        t.queue <- [];
        None
    | shard :: rest when is_retired t shard -> pop rest
    | shard :: rest ->
        t.queue <- rest;
        let id = t.next_id in
        t.next_id <- id + 1;
        let lo = shard * t.lease_trials in
        let hi = min t.total (lo + t.lease_trials) in
        let lease = { id; shard; lo; hi } in
        Hashtbl.replace t.live id { lease; owner; renewed_at = Clock.now_ns t.clock };
        t.granted_total <- t.granted_total + 1;
        Some lease
  in
  pop t.queue

let renew t ~owner =
  let now = Clock.now_ns t.clock in
  Hashtbl.iter (fun _ o -> if o.owner = owner then o.renewed_at <- now) t.live

let find t ~id = Option.map (fun o -> o.lease) (Hashtbl.find_opt t.live id)

let complete t ~id =
  match Hashtbl.find_opt t.live id with
  | None -> `Unknown
  | Some o ->
      Hashtbl.remove t.live id;
      Bytes.set t.retired o.lease.shard '\001';
      t.completed_total <- t.completed_total + 1;
      `Completed o.lease

(* Requeued shards go to the back: fresh shards first keeps workers off
   each other's (possibly pathological) reclaimed ranges. *)
let requeue t o =
  Hashtbl.remove t.live o.lease.id;
  if not (is_retired t o.lease.shard) then t.queue <- t.queue @ [ o.lease.shard ]

let revoke t ~id =
  match Hashtbl.find_opt t.live id with
  | None -> None
  | Some o ->
      requeue t o;
      Some o.lease

let take_live t pred =
  let hits = Hashtbl.fold (fun _ o acc -> if pred o then o :: acc else acc) t.live [] in
  List.iter (requeue t) hits;
  hits

let fail t ~owner =
  let hits = take_live t (fun o -> o.owner = owner) in
  t.expired_total <- t.expired_total + List.length hits;
  List.map (fun o -> o.lease) hits

let expire t =
  let now = Clock.now_ns t.clock in
  let hits = take_live t (fun o -> now - o.renewed_at > t.timeout_ns) in
  t.expired_total <- t.expired_total + List.length hits;
  List.map (fun o -> (o.owner, o.lease)) hits

let live t = Hashtbl.fold (fun _ o acc -> (o.owner, o.lease) :: acc) t.live []

let outstanding t = Hashtbl.length t.live

let pending t =
  List.length (List.filter (fun s -> not (is_retired t s)) t.queue)

let is_done t =
  outstanding t = 0 && pending t = 0

let granted_total t = t.granted_total
let completed_total t = t.completed_total
let expired_total t = t.expired_total
