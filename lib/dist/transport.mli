(** Socket transport for the distributed campaign: Unix-domain and TCP,
    framed by {!Wire}.

    Endpoints parse from the CLI syntax [unix:PATH] / [tcp:HOST:PORT].
    A {!conn} owns one socket, a send mutex (the worker's heartbeat
    thread and its result stream interleave safely) and an incremental
    {!Wire.Decoder}; every byte in or out bumps the [dist.bytes_*]
    counters, so traffic shows up in the coordinator's
    [telemetry.json]. *)

type endpoint = Unix_sock of string | Tcp of string * int

val endpoint_of_string : string -> (endpoint, string) result
(** [unix:PATH] or [tcp:HOST:PORT]; IPv6 hosts are bracketed,
    [tcp:[::1]:9000]. Rejects empty hosts, non-numeric ports and ports
    outside 1–65535 here, with an error naming the offending piece,
    rather than failing later at connect. *)

val endpoint_to_string : endpoint -> string
val pp_endpoint : Format.formatter -> endpoint -> unit

val sockaddr_of : endpoint -> (Unix.sockaddr, string) result
(** Resolve to a socket address (TCP hosts via [gethostbyname], then as
    a literal). Exposed for {!Http}, which speaks raw HTTP over its own
    sockets rather than {!Wire} frames. *)

(** {2 Connections} *)

type conn

val fd : conn -> Unix.file_descr
val peer : conn -> string
(** Human-readable peer address, for logs and the Workers report. *)

val send : conn -> Wire.frame -> (unit, string) result
(** Blocking, serialized by the connection's mutex; [Error] on a broken
    pipe (the peer died — the caller drops the connection). *)

val send_msg : conn -> Codec.msg -> (unit, string) result

val recv_step :
  conn -> [ `Frames of Wire.frame list | `Closed | `Error of string ]
(** One [read] syscall (blocking until the peer writes or closes — on
    the coordinator, call only after [select] reports the fd readable),
    fed to the decoder; returns every frame it completed (possibly
    none: [`Frames []]). [`Closed] is a clean EOF. *)

val recv_msg : conn -> [ `Msg of Codec.msg | `Closed | `Error of string ]
(** Blocking: pump {!recv_step} until one full message decodes. *)

val close : conn -> unit
(** Idempotent. *)

(** {2 Client} *)

val connect : endpoint -> (conn, string) result

(** {2 Server} *)

type listener

val listen : ?backlog:int -> endpoint -> (listener, string) result
(** Bind and listen. A Unix-domain endpoint unlinks any stale socket
    file first and unlinks it again on {!close_listener}. *)

val listener_fd : listener -> Unix.file_descr
val accept : listener -> (conn, string) result
val close_listener : listener -> unit
