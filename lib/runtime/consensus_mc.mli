(** The paper's consensus protocols on the real-multicore substrate.

    The algorithm code is shared with the simulator — the
    {!Ffault_consensus.Algorithms} functor instantiated over
    {!Faulty_cas} cells — so what runs on hardware atomics is the very
    text that was model-checked. Used by experiment B3 and the multicore
    integration tests. *)

type protocol =
  | Single_cas  (** Fig. 1 / Herlihy: one object *)
  | Sweep of int  (** Fig. 2 over the given number of objects *)
  | Staged of { f : int; t : int }
      (** Fig. 3: f objects, maxStage = t·(4f + f²) *)
  | Silent_retry  (** §3.4 retry loop; pair with a bounded fault plan *)

val pp_protocol : Format.formatter -> protocol -> unit

val objects_needed : protocol -> int

type config = {
  protocol : protocol;
  n_domains : int;
  inputs : int array;  (** plain non-negative inputs, one per domain *)
  plan_for : int -> Faulty_cas.plan;  (** fault plan per object index *)
  style : Faulty_cas.style;  (** overriding, silent or nonresponsive *)
  t_bound : int option;  (** per-object observable-fault cap *)
  deadline_s : float option;  (** wall-clock trial deadline, seconds *)
  on_progress : (int -> unit) option;
      (** liveness hook, called with the executing domain's id at each
          domain start and before every CAS — a watchdog heartbeats from
          here ({!Ffault_supervise.Mc}); must be cheap and safe from any
          domain *)
}

val config :
  ?plan_for:(int -> Faulty_cas.plan) ->
  ?style:Faulty_cas.style ->
  ?t_bound:int ->
  ?inputs:int array ->
  ?deadline_s:float ->
  ?on_progress:(int -> unit) ->
  n_domains:int ->
  protocol ->
  config
(** Defaults: no faults, overriding style, unbounded t, inputs 100, 101,
    …, no deadline. For [Staged] protocols [t_bound] defaults to the
    protocol's t.
    @raise Invalid_argument if [style] is {!Faulty_cas.Hang} without a
    deadline (such a trial could never end), or if [deadline_s] is not
    finite and positive. *)

type outcome =
  | Decided of Packed.t
  | Timed_out of string
      (** the domain's trial was cancelled mid-protocol; carries the
          cancellation reason (deadline or external cancel) *)

type result = {
  outcomes : outcome array;  (** per-domain outcome *)
  decisions : Packed.t array;
      (** per-domain decision; {!Packed.bottom} placeholder for
          timed-out domains (kept for callers indexing decisions) *)
  faults_per_object : int array;  (** observable faults committed *)
  ops_per_object : int array;
  agreed : bool;  (** all {e decided} values equal (vacuous if none) *)
  valid : bool;  (** every {e decided} value is some domain's input *)
  timeouts : int;  (** domains that timed out — wait-freedom losses *)
}

val execute : ?cancel:Cancel.t -> config -> result
(** One full parallel consensus: spawn the domains, decide, audit.
    The trial's cancellation token is [cancel] when given (so an external
    watchdog can abort the trial), else one derived from
    [cfg.deadline_s], else {!Cancel.never}. *)
