module Clock = Ffault_telemetry.Clock

type t = {
  state : string option Atomic.t;
  deadline : int; (* absolute monotonic ns; max_int = none *)
  now : unit -> int;
  is_never : bool;
}

exception Cancelled of string

let never =
  { state = Atomic.make None; deadline = max_int; now = (fun () -> 0); is_never = true }

let create ?deadline_ns ?(now = Clock.now_ns) () =
  let deadline =
    match deadline_ns with
    | None -> max_int
    | Some d when d < 0 -> invalid_arg "Cancel.create: deadline_ns < 0"
    | Some d ->
        let n = now () in
        (* saturate: a huge relative deadline must not wrap negative *)
        if n > max_int - d then max_int else n + d
  in
  { state = Atomic.make None; deadline; now; is_never = false }

let after ~seconds =
  if not (Float.is_finite seconds) || seconds < 0.0 then
    invalid_arg "Cancel.after: seconds must be finite and non-negative";
  create ~deadline_ns:(int_of_float (seconds *. 1e9)) ()

let trip t reason = ignore (Atomic.compare_and_set t.state None (Some reason))

let cancel t ~reason =
  if t.is_never then invalid_arg "Cancel.cancel: the shared `never' token";
  trip t reason

let cancelled t =
  match Atomic.get t.state with
  | Some _ -> true
  | None ->
      t.deadline <> max_int
      && t.now () >= t.deadline
      && begin
           trip t "deadline exceeded";
           true
         end

let reason t = if cancelled t then Atomic.get t.state else None

let check t =
  if cancelled t then
    raise (Cancelled (Option.value (Atomic.get t.state) ~default:"cancelled"))

let deadline_ns t = if t.deadline = max_int then None else Some t.deadline
