(** The clock interface shared by everything that judges time.

    Supervision (heartbeats, watchdogs), lease expiry and the netsim
    scheduler all consume the same [t]: a monotonic nanosecond source.
    Production code uses {!monotonic} (the
    [clock_gettime(CLOCK_MONOTONIC)] external from
    {!Ffault_telemetry.Clock}); unit tests and the deterministic
    network simulator substitute a {!Virtual} clock they advance by
    hand, so expiry and stall decisions become pure functions of the
    event sequence. *)

type t

val of_fun : (unit -> int) -> t
(** Wrap an arbitrary nanosecond source. *)

val monotonic : t
(** The process monotonic clock ({!Ffault_telemetry.Clock.now_ns}). *)

val now_ns : t -> int
val now_s : t -> float
(** {!now_ns} in seconds. *)

(** {2 Virtual time}

    A hand-advanced clock: reads return the last value set. Used by the
    fake-clock unit tests (watchdog, lease expiry) and as the time
    source of the netsim event scheduler, where the scheduler sets it
    to each event's timestamp. *)

module Virtual : sig
  type clock := t
  type t

  val create : ?start_ns:int -> unit -> t
  (** Starts at [start_ns] (default 0). *)

  val clock : t -> clock
  (** The read-only face, for injection. *)

  val now_ns : t -> int

  val advance : t -> ns:int -> unit
  (** Move forward by [ns].
      @raise Invalid_argument on a negative step. *)

  val set : t -> ns:int -> unit
  (** Jump to an absolute time.
      @raise Invalid_argument on a backwards jump. *)
end
