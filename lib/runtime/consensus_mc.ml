module Algorithms = Ffault_consensus.Algorithms
module Bounded_faults = Ffault_consensus.Bounded_faults

type protocol = Single_cas | Sweep of int | Staged of { f : int; t : int } | Silent_retry

let pp_protocol ppf = function
  | Single_cas -> Fmt.string ppf "single-cas"
  | Sweep m -> Fmt.pf ppf "sweep-%d" m
  | Staged { f; t } -> Fmt.pf ppf "staged(f=%d,t=%d)" f t
  | Silent_retry -> Fmt.string ppf "silent-retry"

let objects_needed = function
  | Single_cas | Silent_retry -> 1
  | Sweep m -> m
  | Staged { f; _ } -> f

type config = {
  protocol : protocol;
  n_domains : int;
  inputs : int array;
  plan_for : int -> Faulty_cas.plan;
  style : Faulty_cas.style;
  t_bound : int option;
  deadline_s : float option;
  on_progress : (int -> unit) option;
}

let config ?plan_for ?(style = Faulty_cas.Override) ?t_bound ?inputs ?deadline_s
    ?on_progress ~n_domains protocol =
  if n_domains < 1 then invalid_arg "Consensus_mc.config: n_domains < 1";
  if style = Faulty_cas.Hang && deadline_s = None then
    invalid_arg "Consensus_mc.config: Hang style requires a deadline (the trial cannot end)";
  (match deadline_s with
  | Some s when (not (Float.is_finite s)) || s <= 0.0 ->
      invalid_arg "Consensus_mc.config: deadline_s must be finite and positive"
  | _ -> ());
  let inputs =
    match inputs with Some i -> i | None -> Array.init n_domains (fun i -> 100 + i)
  in
  if Array.length inputs <> n_domains then
    invalid_arg "Consensus_mc.config: inputs count differs from n_domains";
  let t_bound =
    match t_bound, protocol with
    | Some t, _ -> Some t
    | None, Staged { t; _ } -> Some t
    | None, (Single_cas | Sweep _ | Silent_retry) -> None
  in
  let plan_for = Option.value plan_for ~default:(fun _ -> Faulty_cas.plan_never) in
  { protocol; n_domains; inputs; plan_for; style; t_bound; deadline_s; on_progress }

type outcome = Decided of Packed.t | Timed_out of string

type result = {
  outcomes : outcome array;
  decisions : Packed.t array;
  faults_per_object : int array;
  ops_per_object : int array;
  agreed : bool;
  valid : bool;
  timeouts : int;
}

module type DECIDERS = sig
  val single_cas_decide : input:Packed.t -> Packed.t
  val sweep_decide : objects:int -> input:Packed.t -> Packed.t
  val staged_decide : f:int -> max_stage:int -> input:Packed.t -> Packed.t
  val silent_retry_decide : input:Packed.t -> Packed.t
end

(* Which domain is executing, for the per-op progress hook: the cas
   wrapper in [deciders] is shared by every domain, so the executing
   id travels in domain-local storage, set by [execute]'s [run]. *)
let slot_key = Domain.DLS.new_key (fun () -> -1)

let deciders ?on_op cells : (module DECIDERS) =
  let note =
    match on_op with Some f -> f | None -> fun () -> ()
  in
  (module Algorithms.Make (struct
    type value = Packed.t

    let bottom = Packed.bottom
    let equal = Packed.equal
    let mk_staged v s = Packed.staged ~value:(Packed.to_int v) ~stage:s
    let stage_of = Packed.stage_of
    let unstage = Packed.unstage

    let cas i ~expected ~desired =
      note ();
      Faulty_cas.cas cells.(i) ~expected ~desired
  end))

let execute ?cancel cfg =
  let n_objects = objects_needed cfg.protocol in
  let cancel =
    match cancel, cfg.deadline_s with
    | Some c, _ -> c
    | None, Some s -> Cancel.after ~seconds:s
    | None, None -> Cancel.never
  in
  let cells =
    Array.init n_objects (fun i ->
        Faulty_cas.make ~plan:(cfg.plan_for i) ~style:cfg.style ?t_bound:cfg.t_bound ~cancel
          ~init:Packed.bottom ())
  in
  let on_op =
    Option.map
      (fun f () ->
        let me = Domain.DLS.get slot_key in
        if me >= 0 then f me)
      cfg.on_progress
  in
  let (module D) = deciders ?on_op cells in
  let decide me =
    let input = Packed.of_int cfg.inputs.(me) in
    match cfg.protocol with
    | Single_cas -> D.single_cas_decide ~input
    | Sweep m -> D.sweep_decide ~objects:m ~input
    | Staged { f; t } ->
        D.staged_decide ~f ~max_stage:(Bounded_faults.max_stage ~f ~t) ~input
    | Silent_retry -> D.silent_retry_decide ~input
  in
  let run me =
    Domain.DLS.set slot_key me;
    (match cfg.on_progress with Some f -> f me | None -> ());
    match decide me with
    | v -> Decided v
    | exception Cancel.Cancelled reason -> Timed_out reason
  in
  let outcomes = Runner.run_parallel ~domains:cfg.n_domains run in
  let decisions =
    Array.map (function Decided v -> v | Timed_out _ -> Packed.bottom) outcomes
  in
  let decided =
    Array.to_list outcomes
    |> List.filter_map (function Decided v -> Some v | Timed_out _ -> None)
  in
  let timeouts = Array.length outcomes - List.length decided in
  (* Agreement and validity quantify over processes that decided: a
     timed-out process violates wait-freedom (counted in [timeouts]), not
     agreement. With no deadline nothing times out and the semantics
     coincide with the original all-processes formulation. *)
  let agreed =
    match decided with [] -> true | d0 :: rest -> List.for_all (Packed.equal d0) rest
  in
  let valid =
    List.for_all
      (fun d ->
        (not (Packed.is_staged d))
        && (not (Packed.is_bottom d))
        && Array.exists (fun i -> i = Packed.to_int d) cfg.inputs)
      decided
  in
  {
    outcomes;
    decisions;
    faults_per_object = Array.map Faulty_cas.observable_faults cells;
    ops_per_object = Array.map Faulty_cas.ops_performed cells;
    agreed;
    valid;
    timeouts;
  }
