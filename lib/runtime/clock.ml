type t = { now_ns : unit -> int }

let of_fun now_ns = { now_ns }
let monotonic = { now_ns = Ffault_telemetry.Clock.now_ns }
let now_ns t = t.now_ns ()
let now_s t = float_of_int (t.now_ns ()) /. 1e9

module Virtual = struct
  type t = { mutable at : int }

  let create ?(start_ns = 0) () = { at = start_ns }
  let clock v = { now_ns = (fun () -> v.at) }
  let now_ns v = v.at

  let advance v ~ns =
    if ns < 0 then invalid_arg "Clock.Virtual.advance: negative step";
    v.at <- v.at + ns

  let set v ~ns =
    if ns < v.at then invalid_arg "Clock.Virtual.set: time went backwards";
    v.at <- ns
end
