module Metrics = Ffault_telemetry.Metrics
module Tracer = Ffault_telemetry.Tracer

let m_tasks = Metrics.counter "runner.tasks"
let m_chunks = Metrics.counter "runner.chunks"
let g_domains = Metrics.gauge "runner.active_domains"

let run_parallel ~domains f =
  if domains < 1 then invalid_arg "Runner.run_parallel: domains < 1";
  if domains = 1 then [| f 0 |]
  else begin
    let arrived = Atomic.make 0 in
    let work i () =
      (* spin barrier: start all workers as simultaneously as possible *)
      Atomic.incr arrived;
      while Atomic.get arrived < domains do
        Domain.cpu_relax ()
      done;
      f i
    in
    let handles = Array.init (domains - 1) (fun i -> Domain.spawn (work (i + 1))) in
    let r0 = work 0 () in
    let results = Array.make domains r0 in
    Array.iteri (fun i h -> results.(i + 1) <- Domain.join h) handles;
    results
  end

let run_tasks ?(chunk = 64) ~domains ~total ~worker ~consume () =
  if domains < 1 then invalid_arg "Runner.run_tasks: domains < 1";
  if chunk < 1 then invalid_arg "Runner.run_tasks: chunk < 1";
  if total < 0 then invalid_arg "Runner.run_tasks: total < 0";
  if total = 0 then ()
  else if domains = 1 then
    Tracer.with_span ~cat:"runner" "run_tasks" (fun () ->
        Metrics.set_gauge g_domains 1;
        Metrics.incr m_chunks;
        Metrics.add m_tasks total;
        for i = 0 to total - 1 do
          consume i (worker i)
        done;
        Metrics.set_gauge g_domains 0)
  else begin
    let next = Atomic.make 0 in
    let lock = Mutex.create () in
    (* Fail-fast poison flag: the first worker exception parks it here and
       every domain stops claiming chunks at its next loop head, instead of
       draining the remaining queue before the exception can propagate. *)
    let first_exn = Atomic.make None in
    let poisoned () = Atomic.get first_exn <> None in
    let note e = ignore (Atomic.compare_and_set first_exn None (Some e)) in
    let body () =
      Metrics.add_gauge g_domains 1;
      (try
         let continue = ref true in
         while !continue do
           if poisoned () then continue := false
           else begin
             let start = Atomic.fetch_and_add next chunk in
             if start >= total then continue := false
             else begin
               let stop = min total (start + chunk) in
               Metrics.incr m_chunks;
               Metrics.add m_tasks (stop - start);
               (* Compute the whole chunk outside the lock; publish under it. *)
               let results =
                 Tracer.with_span ~cat:"runner" "chunk" (fun () ->
                     Array.init (stop - start) (fun k -> worker (start + k)))
               in
               Mutex.lock lock;
               Fun.protect
                 ~finally:(fun () -> Mutex.unlock lock)
                 (fun () ->
                   Tracer.with_span ~cat:"runner" "consume" (fun () ->
                       Array.iteri (fun k r -> consume (start + k) r) results))
             end
           end
         done
       with e -> note e);
      Metrics.add_gauge g_domains (-1)
    in
    (* No start barrier here, unlike [run_parallel]: a throughput pool
       gains nothing from synchronized release, and spinning is
       pathological when domains outnumber cores. *)
    Tracer.with_span ~cat:"runner" "run_tasks" (fun () ->
        let handles = Array.init (domains - 1) (fun _ -> Domain.spawn body) in
        body ();
        Array.iter Domain.join handles;
        match Atomic.get first_exn with None -> () | Some e -> raise e)
  end

let recommended_domains () = min 8 (Domain.recommended_domain_count ())
