(** Parallel execution over OCaml 5 domains.

    [run_parallel] spawns one domain per process, releases them through a
    spin barrier (so they hit the shared objects together, maximizing real
    contention), and joins the results.

    [run_tasks] is the throughput-oriented complement: a chunked
    work-stealing task queue over a dense index space, used by the
    campaign engine to saturate all cores with millions of independent
    trials. *)

val run_parallel : domains:int -> (int -> 'a) -> 'a array
(** [run_parallel ~domains f] runs [f i] on domain i for i in
    [\[0, domains)]. Exceptions in a worker propagate on join.
    @raise Invalid_argument if [domains < 1]. *)

val run_tasks :
  ?chunk:int ->
  domains:int ->
  total:int ->
  worker:(int -> 'a) ->
  consume:(int -> 'a -> unit) ->
  unit ->
  unit
(** [run_tasks ~domains ~total ~worker ~consume ()] executes
    [worker i] for every i in [\[0, total)] across [domains] domains.
    Tasks are claimed in chunks of [chunk] (default 64) from a shared
    atomic counter, so load balances even when task costs vary wildly.
    [consume i result] is invoked under a single mutex — callers may
    stream results to a file or accumulator without further locking —
    in index order within a chunk, with chunks interleaved arbitrarily.
    [worker] runs concurrently and must only touch shared state through
    thread-safe means. With [domains = 1] everything runs sequentially
    on the calling domain in index order.

    {b Fail-fast:} the first exception from [worker] or [consume]
    poisons the queue — sibling domains finish at most the chunk they
    are currently computing and stop claiming new ones — and that first
    exception is re-raised after all domains have joined. Tasks past the
    poisoning point may never run, and results of chunks abandoned
    mid-flight are not [consume]d; callers needing exactly-once
    accounting must track completion themselves (the campaign journal
    does).
    @raise Invalid_argument if [domains < 1], [chunk < 1] or
    [total < 0]. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count], capped at 8 — a sensible default
    for the benches. *)
