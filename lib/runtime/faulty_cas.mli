(** A hardware-backed CAS cell with software-injected overriding faults.

    The correct path is a [compare_and_set] loop returning the original
    content (linearizable CAS-with-old). The faulty path is
    [Atomic.exchange] — an unconditional swap returning the old value,
    which is {e exactly} the overriding postcondition Φ′
    (R = val ∧ old = R′), realized atomically by the hardware.

    Per Definition 1, a "fault" whose outcome coincides with the correct
    one (the comparison would have succeeded anyway, or the written value
    equals the current content) is no fault: such injections are refunded
    and not counted. The per-object bound t is enforced with an atomic
    reservation counter, so a cell never commits more than t observable
    faults even under domain races.

    Fault plans must be thread-safe; the provided ones decide from a
    stateless hash of (seed, operation index). *)

type plan = { plan_name : string; fire : op_index:int -> bool }
(** Decides whether to {e attempt} an overriding fault on the cell's
    [op_index]-th CAS (0-based; indices are assigned by an atomic
    counter, so they are unique but races decide which op gets which). *)

val plan_never : plan
val plan_always : plan

val plan_probabilistic : seed:int64 -> p:float -> plan
(** Fires on each op independently with probability [p], decided by a
    stateless hash — deterministic given (seed, op index). *)

val plan_first_n : int -> plan
val plan_every_kth : int -> plan
(** [plan_every_kth k] fires on ops 0, k, 2k, …
    @raise Invalid_argument if [k < 1]. *)

type style =
  | Override
      (** the paper's overriding fault: the write happens unconditionally
          ([Atomic.exchange]) *)
  | Suppress
      (** the silent fault (§3.4): the write is dropped even when the
          comparison succeeds; the returned old value stays truthful *)
  | Hang
      (** the nonresponsive fault (§3.4): the invocation never returns.
          The stuck call spins on the cell's cancellation token and exits
          only by raising {!Cancel.Cancelled} — give the cell a real
          token via [make ?cancel] (e.g. a deadline) or the caller hangs
          forever, which is the faithful-but-unsupervised semantics. *)

type t

val make :
  ?plan:plan -> ?style:style -> ?t_bound:int -> ?cancel:Cancel.t -> init:Packed.t -> unit -> t
(** Defaults: [plan_never], [Override], unbounded t, {!Cancel.never}.
    [cancel] is polled at every {!cas} entry and contended retry (so even
    a livelocked loop of individually-fast CASes observes it) and inside
    the {!Hang} spin: a tripped token bounds every invocation. *)

val cas : t -> expected:Packed.t -> desired:Packed.t -> Packed.t
(** Returns the original content; possibly executes the overriding
    fault per the plan and budget.
    @raise Cancel.Cancelled if the cell's token trips while this
    invocation is spinning (contended retry or a {!Hang} fault). *)

val observable_faults : t -> int
(** Observable faults committed so far (≤ t_bound when bounded). *)

val ops_performed : t -> int

val peek : t -> Packed.t
(** Read the current content — a harness/debug facility only; the paper's
    CAS object offers no read operation, and no protocol here uses it. *)
