type plan = { plan_name : string; fire : op_index:int -> bool }

let plan_never = { plan_name = "never"; fire = (fun ~op_index:_ -> false) }
let plan_always = { plan_name = "always"; fire = (fun ~op_index:_ -> true) }

let plan_probabilistic ~seed ~p =
  let threshold = Int64.of_float (p *. 9.223372036854775807e18) in
  {
    plan_name = Printf.sprintf "p=%.3f" p;
    fire =
      (fun ~op_index ->
        let h = Ffault_prng.Splitmix.hash (Int64.add seed (Int64.of_int op_index)) in
        (* use the low 63 bits as a uniform non-negative draw *)
        Int64.shift_right_logical h 1 < threshold);
  }

let plan_first_n n = { plan_name = Printf.sprintf "first-%d" n; fire = (fun ~op_index -> op_index < n) }

let plan_every_kth k =
  if k < 1 then invalid_arg "Faulty_cas.plan_every_kth: k < 1";
  { plan_name = Printf.sprintf "every-%dth" k; fire = (fun ~op_index -> op_index mod k = 0) }

type style = Override | Suppress | Hang

type t = {
  cell : Packed.t Atomic.t;
  plan : plan;
  style : style;
  t_bound : int option;
  charged : int Atomic.t;
  ops : int Atomic.t;
  cancel : Cancel.t;
}

let make ?(plan = plan_never) ?(style = Override) ?t_bound ?(cancel = Cancel.never) ~init () =
  {
    cell = Atomic.make init;
    plan;
    style;
    t_bound;
    charged = Atomic.make 0;
    ops = Atomic.make 0;
    cancel;
  }

(* Reserve one fault from the budget; refunded if the injection turns out
   unobservable. *)
let try_reserve c =
  match c.t_bound with
  | None ->
      Atomic.incr c.charged;
      true
  | Some t ->
      let rec go () =
        let cur = Atomic.get c.charged in
        if cur >= t then false
        else if Atomic.compare_and_set c.charged cur (cur + 1) then true
        else go ()
      in
      go ()

let refund c = ignore (Atomic.fetch_and_add c.charged (-1))

let correct_cas ~cancel cell ~expected ~desired =
  let rec go () =
    let cur = Atomic.get cell in
    if Packed.equal cur expected then
      if Atomic.compare_and_set cell expected desired then cur
      else begin
        (* Losing the CAS race is the only spin here; under adversarial
           contention it can livelock, so poll the token per retry. *)
        Cancel.check cancel;
        go ()
      end
    else cur
  in
  go ()

(* The §3.4 nonresponsive fault: the invocation never returns. The only
   exit is the cancellation token — callers without a deadline hang, by
   design (see the .mli). *)
let hang cancel =
  while true do
    Cancel.check cancel;
    Domain.cpu_relax ()
  done

let cas c ~expected ~desired =
  (* Poll at every invocation, not only on contended retries: a livelocked
     protocol loop (e.g. silent-retry under suppression) performs an
     unbounded sequence of individually-fast CASes and would otherwise
     never observe the deadline. *)
  Cancel.check c.cancel;
  let op_index = Atomic.fetch_and_add c.ops 1 in
  if c.plan.fire ~op_index && try_reserve c then begin
    match c.style with
    | Override ->
        let old = Atomic.exchange c.cell desired in
        (* Unobservable injections (Φ still holds) are not faults: refund. *)
        if Packed.equal old expected || Packed.equal old desired then refund c;
        old
    | Suppress ->
        (* The write is dropped: the operation linearizes at this read.
           Observable only if a correct CAS would have changed the value. *)
        let old = Atomic.get c.cell in
        if not (Packed.equal old expected && not (Packed.equal old desired)) then refund c;
        old
    | Hang ->
        (* Never unobservable: the caller is stuck, so the charge stands. *)
        hang c.cancel;
        assert false
  end
  else correct_cas ~cancel:c.cancel c.cell ~expected ~desired

let observable_faults c = Atomic.get c.charged
let ops_performed c = Atomic.get c.ops
let peek c = Atomic.get c.cell
