(** Cooperative cancellation tokens: a deadline plus an external cancel.

    A token is a single word of shared state polled from spin paths
    ({!Faulty_cas}), trial loops ({!Consensus_mc}) and supervision
    threads. Cancellation is level-triggered and sticky: once a token
    trips — explicitly via {!cancel}, or implicitly when its deadline
    passes — every later {!cancelled}/{!check} observes it, with the
    first reason recorded.

    Deadlines are measured on the monotonic clock
    ({!Ffault_telemetry.Clock}), so wall-clock steps cannot fire or
    starve them. Tests inject a fake clock through [~now]. *)

type t

exception Cancelled of string
(** Raised by {!check}; carries the cancellation reason. *)

val never : t
(** The shared token that never trips. Calling {!cancel} on it is a
    programming error and raises [Invalid_argument] (it is shared by
    every caller that opted out of cancellation). *)

val create : ?deadline_ns:int -> ?now:(unit -> int) -> unit -> t
(** A fresh token. [deadline_ns] is relative to [now ()] at creation;
    omitted means no deadline (the token trips only via {!cancel}).
    [now] defaults to {!Ffault_telemetry.Clock.now_ns} — override with a
    fake clock in tests.
    @raise Invalid_argument if [deadline_ns < 0]. *)

val after : seconds:float -> t
(** [create] with the deadline given in fractional seconds.
    @raise Invalid_argument if [seconds] is negative or not finite. *)

val cancel : t -> reason:string -> unit
(** Trip the token. The first call wins; later calls (and a later
    deadline expiry) keep the original reason. *)

val cancelled : t -> bool
(** Poll: has the token tripped? Checks the deadline, so a token past
    its deadline trips on the first poll that observes it. *)

val check : t -> unit
(** @raise Cancelled (with the recorded reason) if {!cancelled}. *)

val reason : t -> string option
(** The recorded reason, if tripped. *)

val deadline_ns : t -> int option
(** The absolute monotonic deadline, if any (introspection/tests). *)
