open Ffault_objects

type t = {
  max_faulty_objects : int;
  max_faults_per_object : int option;
  victims : int list option; (* sorted object ids allowed to fault *)
  counts : (int, int) Hashtbl.t; (* object id -> observable faults charged *)
  max_crashes_per_proc : int;
  crash_counts : (int, int) Hashtbl.t; (* proc -> crash-restarts charged *)
}

let create ?victims ?(max_crashes_per_proc = 0) ~max_faulty_objects ~max_faults_per_object () =
  if max_faulty_objects < 0 then invalid_arg "Budget.create: max_faulty_objects < 0";
  if max_crashes_per_proc < 0 then invalid_arg "Budget.create: max_crashes_per_proc < 0";
  (match max_faults_per_object with
  | Some t when t < 1 -> invalid_arg "Budget.create: max_faults_per_object < 1"
  | _ -> ());
  let victims =
    Option.map
      (fun l ->
        let ids = List.sort_uniq Int.compare (List.map Obj_id.to_int l) in
        if List.length ids > max_faulty_objects then
          invalid_arg "Budget.create: more victims than max_faulty_objects";
        ids)
      victims
  in
  { max_faulty_objects; max_faults_per_object; victims; counts = Hashtbl.create 8;
    max_crashes_per_proc; crash_counts = Hashtbl.create 8 }

let unlimited () =
  { max_faulty_objects = max_int; max_faults_per_object = None; victims = None;
    counts = Hashtbl.create 8; max_crashes_per_proc = 0; crash_counts = Hashtbl.create 8 }

let none () = create ~max_faulty_objects:0 ~max_faults_per_object:None ()

(* Both tables must be copied: an exploration snapshot that aliased
   [crash_counts] would see a crash replayed after restore charged on the
   shared table a second time. *)
let copy b = { b with counts = Hashtbl.copy b.counts; crash_counts = Hashtbl.copy b.crash_counts }

let f b = b.max_faulty_objects
let t_bound b = b.max_faults_per_object
let crash_bound b = b.max_crashes_per_proc

let faults_on b o = Option.value ~default:0 (Hashtbl.find_opt b.counts (Obj_id.to_int o))

let num_faulty b = Hashtbl.length b.counts

let victim_ok b o =
  match b.victims with None -> true | Some ids -> List.mem (Obj_id.to_int o) ids

let can_fault b o =
  victim_ok b o
  &&
  let n = faults_on b o in
  let per_object_ok = match b.max_faults_per_object with None -> true | Some t -> n < t in
  per_object_ok && (n > 0 || num_faulty b < b.max_faulty_objects)

let charge b o =
  if not (can_fault b o) then
    invalid_arg (Fmt.str "Budget.charge: fault on %a exceeds budget" Obj_id.pp o);
  Hashtbl.replace b.counts (Obj_id.to_int o) (faults_on b o + 1)

let crashes_on b proc = Option.value ~default:0 (Hashtbl.find_opt b.crash_counts proc)

let can_crash b ~proc = crashes_on b proc < b.max_crashes_per_proc

let charge_crash b ~proc =
  if not (can_crash b ~proc) then
    invalid_arg (Fmt.str "Budget.charge_crash: crash of proc %d exceeds budget" proc);
  Hashtbl.replace b.crash_counts proc (crashes_on b proc + 1)

let total_crashes b = Hashtbl.fold (fun _ n acc -> acc + n) b.crash_counts 0

let faulty_objects b =
  Hashtbl.fold (fun id _ acc -> id :: acc) b.counts []
  |> List.sort Int.compare
  |> List.map Obj_id.of_int

let total_faults b = Hashtbl.fold (fun _ n acc -> acc + n) b.counts 0

let pp ppf b =
  let t_str = match b.max_faults_per_object with None -> "\xe2\x88\x9e" | Some t -> string_of_int t in
  let f_str = if b.max_faulty_objects = max_int then "\xe2\x88\x9e" else string_of_int b.max_faulty_objects in
  Fmt.pf ppf "budget(f=%s, t=%s; charged %d faults on %d objects)" f_str t_str (total_faults b)
    (num_faulty b);
  if b.max_crashes_per_proc > 0 || total_crashes b > 0 then
    Fmt.pf ppf " (crashes: %d charged, \xe2\x89\xa4%d per proc)" (total_crashes b)
      b.max_crashes_per_proc
