(** (f, t) fault-budget accounting (paper §3.2, Definition 3).

    [f] bounds the number of {e faulty objects} in the execution — an
    object becomes faulty the first time one of its operations commits an
    observable fault. [t] bounds the number of faults {e per faulty
    object}; [None] means unbounded (the paper's t = ∞).

    Optionally a victim set restricts which objects are even allowed to
    fault (used to stage specific adversarial scenarios: "objects O₁ and
    O₃ are the bad ones"). Budgets are mutable per-execution records; use
    {!copy} for exploration snapshots. *)

open Ffault_objects

type t

val create :
  ?victims:Obj_id.t list ->
  ?max_crashes_per_proc:int ->
  max_faulty_objects:int ->
  max_faults_per_object:int option ->
  unit ->
  t
(** [max_crashes_per_proc] (default 0) bounds the crash-restart dimension:
    how many times each process may crash during one execution. It is
    orthogonal to the (f, t) object budget — a crash is a {e process}
    fault, not an object fault, so it never consumes [f] or [t].
    @raise Invalid_argument if [max_faulty_objects < 0], a bounded
    [max_faults_per_object] is [< 1], [max_crashes_per_proc < 0], or the
    victim list exceeds [max_faulty_objects]. *)

val unlimited : unit -> t
(** No restriction: every object may fault arbitrarily often. *)

val none : unit -> t
(** f = 0: the fault-free world. *)

val copy : t -> t
(** Deep copy of the mutable charge state — both the per-object fault
    table and the per-process crash table. Exploration snapshots rely on
    this: replaying a crash after restoring a snapshot must charge the
    snapshot's own table, never double-charge a shared one. *)

val f : t -> int
val t_bound : t -> int option

val crash_bound : t -> int
(** The per-process crash cap ([0] for crash-free budgets). *)

val can_fault : t -> Obj_id.t -> bool
(** Whether charging one more observable fault to this object is allowed:
    the object is in the victim set (if any), and either it is already
    faulty with remaining per-object budget, or fewer than [f] objects are
    faulty so far. *)

val charge : t -> Obj_id.t -> unit
(** Record one observable fault.
    @raise Invalid_argument if [can_fault] is false. *)

val faulty_objects : t -> Obj_id.t list
(** Objects charged at least once, ascending. *)

val faults_on : t -> Obj_id.t -> int

val total_faults : t -> int

val can_crash : t -> proc:int -> bool
(** Whether process [proc] may crash once more under the per-process cap. *)

val charge_crash : t -> proc:int -> unit
(** Record one crash-restart of [proc].
    @raise Invalid_argument if [can_crash] is false. *)

val crashes_on : t -> int -> int
(** Crashes charged to a process so far. *)

val total_crashes : t -> int

val pp : Format.formatter -> t -> unit
