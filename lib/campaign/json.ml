type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.1f" f)
      else Buffer.add_string b (Printf.sprintf "%.17g" f)
  | Str s -> escape_string b s
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* ---- parsing: plain recursive descent ---- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char b e;
              go ()
          | 'n' ->
              Buffer.add_char b '\n';
              go ()
          | 't' ->
              Buffer.add_char b '\t';
              go ()
          | 'r' ->
              Buffer.add_char b '\r';
              go ()
          | 'b' ->
              Buffer.add_char b '\b';
              go ()
          | 'f' ->
              Buffer.add_char b '\012';
              go ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let code =
                try int_of_string ("0x" ^ String.sub s !pos 4)
                with Failure _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              (* encode the code point as UTF-8 (BMP only; our own
                 encoder never emits \u for non-control characters) *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> fail "bad escape")
      | c ->
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let continue = ref true in
    while !continue do
      match peek () with
      | Some ('0' .. '9' | '-' | '+') -> advance ()
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ()
      | _ -> continue := false
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with Some f -> Float f | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with Some f -> Float f | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match parse_value () with
  | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos) else Ok v
  | exception Parse_error msg -> Error msg

(* ---- accessors ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get_int = function Int i -> Some i | Float f when Float.is_integer f -> Some (int_of_float f) | _ -> None
let get_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let get_str = function Str s -> Some s | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
let get_list = function List l -> Some l | _ -> None
