(** Deterministic expansion of a {!Spec} into the trial grid.

    Cells enumerate the cartesian product of the spec's axes in a fixed
    nesting order (f, then t, then n, then kind, then rate, then the
    crash axes: crashes, crash rate, persistence); trial ids are dense:
    trial [id] belongs to cell [id / trials]. The crash axes are
    innermost so crash-free specs keep their historical cell order. Every trial's
    seed is derived statelessly from the root seed and its id with the
    SplitMix finalizer, so any domain can compute any trial's seed
    without coordination and a campaign is exactly replayable from its
    manifest. *)

type cell = {
  f : int;
  t : int option;
  n : int;
  kind : Ffault_fault.Fault_kind.t;
  rate : float;
  crashes : int;  (** per-process crash cap; 0 = crash-free *)
  crash_rate : float;  (** per-operation crash probability *)
  persistence : Ffault_recover.Persistence.mode;
}

type trial = {
  id : int;  (** dense in [\[0, total_trials)] *)
  cell_id : int;
  cell : cell;
  index : int;  (** trial number within its cell *)
  seed : int64;  (** the trial's full entropy *)
}

val cells : Spec.t -> cell array
val n_cells : Spec.t -> int
val total_trials : Spec.t -> int

val seed_of : Spec.t -> int -> int64
(** [seed_of spec id] — stateless, O(1). *)

val crash_plan_seed : Spec.t -> int64 -> int64
(** [crash_plan_seed spec trial_seed] — the seed of the trial's crash
    plan: the spec's [crash_seed] mixed into the trial seed, so varying
    [--crash-seed] re-rolls crash schedules without touching the
    primitive-fault schedules. *)

val trial : Spec.t -> int -> trial
(** @raise Invalid_argument if [id] is out of range. *)

val trial_of_cells : Spec.t -> cell array -> int -> trial
(** Like {!trial} with a pre-computed {!cells} array (the executor's hot
    path). *)

val cell_of_id : Spec.t -> int -> cell

val setup : cell -> Ffault_consensus.Protocol.t -> Ffault_verify.Consensus_check.setup
(** The checker setup a cell's trials run under: the cell's (f, t, n)
    params with only the cell's fault kind allowed, and — when the cell
    has [crashes > 0] — the crash cap and persistence mode armed. *)

val in_envelope : cell -> Ffault_consensus.Protocol.t -> bool
(** Whether the protocol's theorem covers this cell (violations inside
    the envelope are regressions; outside, expected data). The kind
    matters: each theorem is stated for one fault kind (overriding for
    the CAS constructions, silent for silent-retry) — a cell injecting
    any other kind is out of envelope regardless of (f, t, n). A cell
    with crash-restarts is only in envelope for protocols that declare a
    recovery section. *)

val cell_key : cell -> string
(** Canonical axis string, the join key for campaign diffs. Crash-free
    cells render exactly as before the crash axes existed, so old and
    new journals keep joining. *)

val pp_cell : Format.formatter -> cell -> unit
