(** The campaign journal: one JSONL record per completed trial.

    The journal is the campaign's source of truth — durable (each record
    is flushed as written, so a killed run loses at most the record
    mid-write), append-only, and safe to write from many domains through
    the mutexed {!writer}. {!Checkpoint} replays it to decide which
    trials are already done; {!Report} aggregates it into per-cell
    statistics.

    Record schema (see doc/CAMPAIGNS.md):
    {v
    {"trial":17,"f":2,"t":1,"n":3,"kind":"overriding","rate":0.4,
     "seed":"-553...","ok":false,"outcome":"violation","retries":0,
     "violations":["consistency: ..."],
     "steps":41,"max_steps":17,"stage":3,"faults":2,"wall_us":180,
     "witness":[1,0,2]}
    v}

    Records from crash cells additionally carry the cell's crash axes
    ([crashes], [crash_rate], [persistence]) and the trial's
    [crash_faults] count; crash-free records omit them entirely and stay
    byte-identical to pre-recovery journals (and pre-recovery journals
    parse with the crash-free defaults). *)

type outcome =
  | Pass  (** ran to completion, no violations *)
  | Violation  (** ran to completion, oracle violations found *)
  | Timeout
      (** cancelled at the deadline (after retries, if any) — no verdict
          on the protocol, a wait-freedom loss for the harness *)
  | Quarantined  (** skipped: its cell was degraded before it ran *)

val outcome_to_string : outcome -> string
val outcome_of_string : string -> outcome option
val pp_outcome : Format.formatter -> outcome -> unit

type record = {
  trial : int;  (** dense trial id, see {!Grid} *)
  cell : Grid.cell;
  seed : int64;
  ok : bool;  (** [outcome = Pass] (kept explicit for older readers) *)
  outcome : outcome;
  retries : int;  (** failed attempts before this record's outcome *)
  violations : string list;  (** rendered violations when [not ok] *)
  steps : int;  (** total engine steps *)
  max_steps : int;  (** worst per-process operation count *)
  stage : int;  (** max Fig. 3 stage reached in final states; -1 if none *)
  faults : int;  (** observable faults charged *)
  crash_faults : int;  (** crash-restarts charged; 0 in crash-free cells *)
  wall_us : int;  (** trial wall time, µs (includes shrinking) *)
  witness : int array option;  (** minimized decision vector on failure *)
}

val to_json : record -> Json.t
val of_json : Json.t -> (record, string) result

val to_line : record -> string
(** One JSONL line (no newline). *)

val of_line : string -> (record, string) result

(** {2 Writing} *)

type writer

val create_writer : path:string -> writer
(** Opens (creating or appending) the journal file. *)

val append : writer -> record -> unit
(** Serialized by an internal mutex; flushes each record. *)

val close_writer : writer -> unit

(** {2 Crash recovery} *)

type recovery = {
  dropped_bytes : int;
  interior_torn : int;
      (** malformed {e newline-terminated} records. A crash can only tear
          the final line (appends are sequential, flushed per record), so
          interior damage points at filesystem corruption, a concurrent
          writer, or hand edits — surfaced here and in the report's
          health section rather than silently skipped by {!fold}. *)
  warning : string option;
}

val recover : path:string -> recovery
(** Repair the torn trailing line a killed run can leave (a partial
    flush of ["record\n"]). A parseable tail that merely lost its
    newline is completed in place; an unparseable tail is truncated
    away, so the checkpoint scan re-runs that trial. Also counts
    interior torn records (see {!recovery.interior_torn}); those are
    left in place — their trials re-run via the checkpoint scan. Must be
    called before reopening the journal for append on resume — otherwise
    the next record would concatenate onto the torn bytes and corrupt
    both. A missing, empty, or newline-terminated file repairs nothing. *)

(** {2 Health} *)

type health = {
  h_lines : int;  (** non-blank lines *)
  h_parsed : int;
  h_malformed : int;  (** lines {!fold} would silently skip *)
}

val health : path:string -> health
(** Scan the whole journal and report its parse health — what
    [campaign report]'s health section shows. A missing file is healthy
    (all zeros). *)

(** {2 Reading} *)

val fold : path:string -> init:'a -> f:('a -> record -> 'a) -> 'a
(** Stream the journal in write order. A missing file is an empty
    journal; malformed lines (a torn final write) are skipped. *)

val load : path:string -> record list
val count : path:string -> int
