(** Declarative campaign specifications.

    A spec names a protocol and the parameter axes the campaign sweeps:
    fault budget f, per-object bound t ([None] = the paper's ∞), process
    count n, fault kinds, fault-choice rates, plus the per-cell trial
    count and root seed. {!Grid} expands it into the deterministic trial
    grid; {!Checkpoint} persists it as the campaign manifest.

    The textual format is line-oriented [key = value] with [#] comments;
    integer axes accept comma lists and [lo..hi] ranges:

    {v
    name     = fig3-sweep
    protocol = fig3          # fig1 fig2 fig3 herlihy silent-retry tas
                             # rec-cas rec-tas naive-tas sweepN
    f        = 1..3
    t        = 1,2,unbounded
    n        = 3
    kinds    = overriding,silent
    rates    = 0.2,0.6
    trials   = 500
    seed     = 42
    v}

    The crash axes ([crashes], [crash-rates], [persistence], [crash-seed])
    default to the crash-free singletons and expand as the {e innermost}
    grid loops, so adding them to an existing spec never re-assigns the
    trial ids of its crash-free cells. *)

type t = {
  name : string;  (** artifact-directory name, [A-Za-z0-9_.-] *)
  protocol : string;  (** canonical protocol name, see {!resolve_protocol} *)
  f_values : int list;
  t_values : int option list;  (** [None] = unbounded *)
  n_values : int list;
  kinds : Ffault_fault.Fault_kind.t list;
  rates : float list;
      (** probability that a step with an available fault takes one *)
  crashes : int list;
      (** per-process crash caps to sweep; 0 = crash-free (default) *)
  crash_rates : float list;
      (** per-operation crash probabilities for the {!Ffault_recover.Crash_plan} *)
  persistence : Ffault_recover.Persistence.mode list;
      (** persistence modes to sweep ([all], [lossy], [only:<ids>]) *)
  crash_seed : int64;
      (** mixed into each trial's seed to derive its crash plan, so the
          crash schedule can be varied independently of the fault
          schedule (default 0) *)
  trials : int;  (** trials per grid cell *)
  seed : int64;  (** root seed; per-trial seeds derive from it *)
}

val has_crash_axes : t -> bool
(** Whether any crash axis differs from its crash-free default; reports
    only render the crash columns when it holds. *)

val v :
  ?name:string ->
  protocol:string ->
  ?f:int list ->
  ?t:int option list ->
  ?n:int list ->
  ?kinds:Ffault_fault.Fault_kind.t list ->
  ?rates:float list ->
  ?crashes:int list ->
  ?crash_rates:float list ->
  ?persistence:Ffault_recover.Persistence.mode list ->
  ?crash_seed:int64 ->
  trials:int ->
  ?seed:int64 ->
  unit ->
  t
(** Build and validate a spec programmatically.
    @raise Invalid_argument on an invalid spec (see {!validate}). *)

val validate : t -> (t, string) result
(** Well-formedness: resolvable protocol, non-empty axes, f ≥ 0, bounded
    t ≥ 1, n ≥ 1, rates in [0, 1], trials ≥ 1, filename-safe name. *)

val parse : string -> (t, string) result
(** Parse the textual spec format above. *)

val of_file : string -> (t, string) result

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val equal : t -> t -> bool

val resolve_protocol : string -> (Ffault_consensus.Protocol.t, string) result
(** Canonical protocol names: fig1, fig2, fig3, herlihy, silent-retry,
    tas, rec-cas, rec-tas, naive-tas (doc/RECOVERY.md), and sweepN (the
    Fig. 2 sweep over exactly N objects). Shared with the CLI. *)

val protocol_names : string list
(** For help text. *)

(** Axis parsers, shared with the CLI flags. *)

val ints_of_string : string -> (int list, string) result
val t_values_of_string : string -> (int option list, string) result
val kinds_of_string : string -> (Ffault_fault.Fault_kind.t list, string) result
val rates_of_string : string -> (float list, string) result
val persistence_of_string : string -> (Ffault_recover.Persistence.mode list, string) result

val pp : Format.formatter -> t -> unit
