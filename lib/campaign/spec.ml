module Fault_kind = Ffault_fault.Fault_kind
module Consensus = Ffault_consensus
module Persistence = Ffault_recover.Persistence

type t = {
  name : string;
  protocol : string;
  f_values : int list;
  t_values : int option list;
  n_values : int list;
  kinds : Fault_kind.t list;
  rates : float list;
  crashes : int list;
  crash_rates : float list;
  persistence : Persistence.mode list;
  crash_seed : int64;
  trials : int;
  seed : int64;
}

let default_crashes = [ 0 ]
let default_crash_rates = [ 0.0 ]
let default_persistence = [ Persistence.Persist_all ]
let default_crash_seed = 0L

let has_crash_axes spec =
  spec.crashes <> default_crashes
  || spec.crash_rates <> default_crash_rates
  || not (List.equal Persistence.equal spec.persistence default_persistence)

(* ---- protocol resolution (shared with bin/main.ml) ---- *)

let resolve_protocol name =
  match String.lowercase_ascii name with
  | "fig1" -> Ok Consensus.Single_cas.two_process
  | "fig2" -> Ok Consensus.F_tolerant.protocol
  | "fig3" -> Ok Consensus.Bounded_faults.protocol
  | "herlihy" -> Ok Consensus.Single_cas.herlihy
  | "silent-retry" -> Ok Consensus.Silent_retry.protocol
  | "tas" -> Ok Consensus.Tas_consensus.protocol
  | "rec-cas" -> Ok Consensus.Recoverable.rec_cas
  | "rec-tas" -> Ok Consensus.Recoverable.rec_tas
  | "naive-tas" -> Ok Consensus.Recoverable.naive_tas
  | s when String.length s > 5 && String.sub s 0 5 = "sweep" -> (
      match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
      | Some m when m >= 1 -> Ok (Consensus.F_tolerant.with_objects m)
      | Some _ | None -> Error (Fmt.str "bad sweep object count in %S" s))
  | _ -> Error (Fmt.str "unknown protocol %S" name)

let protocol_names =
  [ "fig1"; "fig2"; "fig3"; "herlihy"; "silent-retry"; "tas"; "rec-cas"; "rec-tas"; "naive-tas";
    "sweepN" ]

(* ---- validation ---- *)

let name_ok s =
  s <> ""
  && String.for_all
       (fun c ->
         match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true | _ -> false)
       s

let validate spec =
  let err fmt = Fmt.kstr (fun m -> Error m) fmt in
  if not (name_ok spec.name) then
    err "campaign name %S must be non-empty [A-Za-z0-9_.-]" spec.name
  else
    match resolve_protocol spec.protocol with
    | Error m -> Error m
    | Ok _ ->
        if spec.f_values = [] then err "empty f list"
        else if List.exists (fun f -> f < 0) spec.f_values then err "f values must be >= 0"
        else if spec.t_values = [] then err "empty t list"
        else if
          List.exists (function Some t -> t < 1 | None -> false) spec.t_values
        then err "bounded t values must be >= 1"
        else if spec.n_values = [] then err "empty n list"
        else if List.exists (fun n -> n < 1) spec.n_values then err "n values must be >= 1"
        else if List.is_empty spec.kinds then err "empty fault-kind list"
        else if spec.rates = [] then err "empty rate list"
        else if List.exists (fun r -> r < 0.0 || r > 1.0) spec.rates then
          err "rates must lie in [0, 1]"
        else if spec.crashes = [] then err "empty crashes list"
        else if List.exists (fun c -> c < 0) spec.crashes then err "crashes must be >= 0"
        else if spec.crash_rates = [] then err "empty crash-rate list"
        else if List.exists (fun r -> r < 0.0 || r > 1.0) spec.crash_rates then
          err "crash rates must lie in [0, 1]"
        else if spec.persistence = [] then err "empty persistence list"
        else if spec.trials < 1 then err "trials must be >= 1"
        else Ok spec

let v ?(name = "campaign") ~protocol ?(f = [ 1 ]) ?(t = [ None ]) ?(n = [ 3 ])
    ?(kinds = [ Fault_kind.Overriding ]) ?(rates = [ 0.5 ]) ?(crashes = default_crashes)
    ?(crash_rates = default_crash_rates) ?(persistence = default_persistence)
    ?(crash_seed = default_crash_seed) ~trials ?(seed = 0xCA3AL) () =
  match
    validate
      { name; protocol; f_values = f; t_values = t; n_values = n; kinds; rates; crashes;
        crash_rates; persistence; crash_seed; trials; seed }
  with
  | Ok s -> s
  | Error m -> invalid_arg ("Spec.v: " ^ m)

(* ---- axis-list parsing (also used by the CLI flags) ---- *)

let parse_items s = String.split_on_char ',' s |> List.map String.trim |> List.filter (( <> ) "")

let ints_of_string s =
  let item it =
    match String.index_opt it '.' with
    | Some i when i + 1 < String.length it && it.[i + 1] = '.' -> (
        let lo = String.sub it 0 i and hi = String.sub it (i + 2) (String.length it - i - 2) in
        match (int_of_string_opt lo, int_of_string_opt hi) with
        | Some lo, Some hi when lo <= hi -> Ok (List.init (hi - lo + 1) (fun k -> lo + k))
        | _ -> Error (Fmt.str "bad range %S" it))
    | _ -> (
        match int_of_string_opt it with
        | Some v -> Ok [ v ]
        | None -> Error (Fmt.str "bad integer %S" it))
  in
  List.fold_left
    (fun acc it ->
      match (acc, item it) with
      | Ok vs, Ok more -> Ok (vs @ more)
      | (Error _ as e), _ | _, (Error _ as e) -> e)
    (Ok []) (parse_items s)

let t_values_of_string s =
  List.fold_left
    (fun acc it ->
      match acc with
      | Error _ as e -> e
      | Ok vs -> (
          match String.lowercase_ascii it with
          | "unbounded" | "inf" | "none" | "-" -> Ok (vs @ [ None ])
          | _ -> (
              match ints_of_string it with
              | Ok more -> Ok (vs @ List.map Option.some more)
              | Error m -> Error m)))
    (Ok []) (parse_items s)

let kinds_of_string s =
  List.fold_left
    (fun acc it ->
      match acc with
      | Error _ as e -> e
      | Ok ks -> (
          match Fault_kind.of_string (String.lowercase_ascii it) with
          | Some k -> Ok (ks @ [ k ])
          | None -> Error (Fmt.str "unknown fault kind %S" it)))
    (Ok []) (parse_items s)

let rates_of_string s =
  List.fold_left
    (fun acc it ->
      match acc with
      | Error _ as e -> e
      | Ok rs -> (
          match float_of_string_opt it with
          | Some r -> Ok (rs @ [ r ])
          | None -> Error (Fmt.str "bad rate %S" it)))
    (Ok []) (parse_items s)

let persistence_of_string s =
  List.fold_left
    (fun acc it ->
      match acc with
      | Error _ as e -> e
      | Ok ms -> (
          match Persistence.of_string (String.lowercase_ascii it) with
          | Ok m -> Ok (ms @ [ m ])
          | Error m -> Error m))
    (Ok []) (parse_items s)

(* ---- the declarative text format ---- *)

let parse text =
  let ( let* ) = Result.bind in
  let lines = String.split_on_char '\n' text in
  let* fields =
    List.fold_left
      (fun acc (lineno, line) ->
        let* fields = acc in
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = String.trim line in
        if line = "" then Ok fields
        else
          match String.index_opt line '=' with
          | None -> Error (Fmt.str "line %d: expected `key = value'" lineno)
          | Some i ->
              let key = String.trim (String.sub line 0 i) in
              let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
              Ok ((key, value) :: fields))
      (Ok [])
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  let find key = List.assoc_opt key fields in
  let with_default key default parse_fn =
    match find key with None -> Ok default | Some v -> parse_fn v
  in
  let* name = with_default "name" "campaign" (fun s -> Ok s) in
  let* protocol =
    match find "protocol" with
    | Some p -> Ok p
    | None -> Error "missing required key `protocol'"
  in
  let* f_values = with_default "f" [ 1 ] ints_of_string in
  let* t_values = with_default "t" [ None ] t_values_of_string in
  let* n_values = with_default "n" [ 3 ] ints_of_string in
  let* kinds = with_default "kinds" [ Fault_kind.Overriding ] kinds_of_string in
  let* rates = with_default "rates" [ 0.5 ] rates_of_string in
  let* crashes = with_default "crashes" default_crashes ints_of_string in
  let* crash_rates = with_default "crash-rates" default_crash_rates rates_of_string in
  let* persistence = with_default "persistence" default_persistence persistence_of_string in
  let* crash_seed =
    with_default "crash-seed" default_crash_seed (fun s ->
        match Int64.of_string_opt s with
        | Some v -> Ok v
        | None -> Error (Fmt.str "bad crash-seed %S" s))
  in
  let* trials =
    with_default "trials" 100 (fun s ->
        match int_of_string_opt s with Some v -> Ok v | None -> Error (Fmt.str "bad trials %S" s))
  in
  let* seed =
    with_default "seed" 0xCA3AL (fun s ->
        match Int64.of_string_opt s with Some v -> Ok v | None -> Error (Fmt.str "bad seed %S" s))
  in
  let* () =
    match
      List.find_opt
        (fun (k, _) ->
          not
            (List.mem k
               [ "name"; "protocol"; "f"; "t"; "n"; "kinds"; "rates"; "crashes"; "crash-rates";
                 "persistence"; "crash-seed"; "trials"; "seed" ]))
        fields
    with
    | Some (k, _) -> Error (Fmt.str "unknown key %S" k)
    | None -> Ok ()
  in
  validate
    { name; protocol; f_values; t_values; n_values; kinds; rates; crashes; crash_rates;
      persistence; crash_seed; trials; seed }

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error m -> Error m

(* ---- JSON (manifest) ---- *)

let to_json spec =
  Json.Obj
    [
      ("name", Json.Str spec.name);
      ("protocol", Json.Str spec.protocol);
      ("f", Json.List (List.map (fun f -> Json.Int f) spec.f_values));
      ( "t",
        Json.List
          (List.map (function Some t -> Json.Int t | None -> Json.Null) spec.t_values) );
      ("n", Json.List (List.map (fun n -> Json.Int n) spec.n_values));
      ("kinds", Json.List (List.map (fun k -> Json.Str (Fault_kind.to_string k)) spec.kinds));
      ("rates", Json.List (List.map (fun r -> Json.Float r) spec.rates));
      ("crashes", Json.List (List.map (fun c -> Json.Int c) spec.crashes));
      ("crash_rates", Json.List (List.map (fun r -> Json.Float r) spec.crash_rates));
      ( "persistence",
        Json.List (List.map (fun m -> Json.Str (Persistence.to_string m)) spec.persistence) );
      ("crash_seed", Json.Str (Int64.to_string spec.crash_seed));
      ("trials", Json.Int spec.trials);
      ("seed", Json.Str (Int64.to_string spec.seed));
    ]

let of_json json =
  let ( let* ) = Result.bind in
  let field key project =
    match Option.bind (Json.member key json) project with
    | Some v -> Ok v
    | None -> Error (Fmt.str "manifest: missing or malformed %S" key)
  in
  let int_list key =
    field key (fun j ->
        Option.bind (Json.get_list j) (fun items ->
            let vs = List.filter_map Json.get_int items in
            if List.length vs = List.length items then Some vs else None))
  in
  let* name = field "name" Json.get_str in
  let* protocol = field "protocol" Json.get_str in
  let* f_values = int_list "f" in
  let* t_values =
    field "t" (fun j ->
        Option.bind (Json.get_list j) (fun items ->
            let vs =
              List.filter_map
                (function Json.Null -> Some None | j -> Option.map Option.some (Json.get_int j))
                items
            in
            if List.length vs = List.length items then Some vs else None))
  in
  let* n_values = int_list "n" in
  let* kinds =
    field "kinds" (fun j ->
        Option.bind (Json.get_list j) (fun items ->
            let vs = List.filter_map (fun j -> Option.bind (Json.get_str j) Fault_kind.of_string) items in
            if List.length vs = List.length items then Some vs else None))
  in
  let* rates =
    field "rates" (fun j ->
        Option.bind (Json.get_list j) (fun items ->
            let vs = List.filter_map Json.get_float items in
            if List.length vs = List.length items then Some vs else None))
  in
  (* Crash axes default when absent: manifests written before the crash
     dimension existed keep parsing (and keep their trial-id assignment —
     the axes are the innermost grid loops). *)
  let opt_field key default project =
    match Json.member key json with
    | None -> Ok default
    | Some j -> (
        match project j with
        | Some v -> Ok v
        | None -> Error (Fmt.str "manifest: malformed %S" key))
  in
  let* crashes =
    opt_field "crashes" default_crashes (fun j ->
        Option.bind (Json.get_list j) (fun items ->
            let vs = List.filter_map Json.get_int items in
            if List.length vs = List.length items then Some vs else None))
  in
  let* crash_rates =
    opt_field "crash_rates" default_crash_rates (fun j ->
        Option.bind (Json.get_list j) (fun items ->
            let vs = List.filter_map Json.get_float items in
            if List.length vs = List.length items then Some vs else None))
  in
  let* persistence =
    opt_field "persistence" default_persistence (fun j ->
        Option.bind (Json.get_list j) (fun items ->
            let vs =
              List.filter_map
                (fun j -> Option.bind (Json.get_str j) (fun s -> Result.to_option (Persistence.of_string s)))
                items
            in
            if List.length vs = List.length items then Some vs else None))
  in
  let* crash_seed =
    opt_field "crash_seed" default_crash_seed (fun j ->
        Option.bind (Json.get_str j) Int64.of_string_opt)
  in
  let* trials = field "trials" Json.get_int in
  let* seed = field "seed" (fun j -> Option.bind (Json.get_str j) Int64.of_string_opt) in
  validate
    { name; protocol; f_values; t_values; n_values; kinds; rates; crashes; crash_rates;
      persistence; crash_seed; trials; seed }

let equal a b = to_json a = to_json b

let pp ppf spec =
  let pp_t ppf = function Some t -> Fmt.int ppf t | None -> Fmt.string ppf "∞" in
  Fmt.pf ppf
    "@[<h>campaign %s: %s, f ∈ {%a}, t ∈ {%a}, n ∈ {%a}, kinds {%a}, rates {%a}, %d \
     trials/cell, seed %Ld@]"
    spec.name spec.protocol
    (Fmt.list ~sep:Fmt.comma Fmt.int)
    spec.f_values
    (Fmt.list ~sep:Fmt.comma pp_t)
    spec.t_values
    (Fmt.list ~sep:Fmt.comma Fmt.int)
    spec.n_values
    (Fmt.list ~sep:Fmt.comma Fault_kind.pp)
    spec.kinds
    (Fmt.list ~sep:Fmt.comma (Fmt.float_dfrac 2))
    spec.rates spec.trials spec.seed;
  if has_crash_axes spec then
    Fmt.pf ppf "@ (crashes {%a}, crash rates {%a}, persistence {%a}, crash seed %Ld)"
      (Fmt.list ~sep:Fmt.comma Fmt.int)
      spec.crashes
      (Fmt.list ~sep:Fmt.comma (Fmt.float_dfrac 2))
      spec.crash_rates
      (Fmt.list ~sep:Fmt.comma Persistence.pp)
      spec.persistence spec.crash_seed
