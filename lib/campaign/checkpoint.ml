let manifest_file = "manifest.json"
let journal_file = "journal.jsonl"
let telemetry_file = "telemetry.json"
let workers_file = "workers.json"
let owner_file = "owner.json"

let manifest_path ~dir = Filename.concat dir manifest_file
let journal_path ~dir = Filename.concat dir journal_file
let telemetry_path ~dir = Filename.concat dir telemetry_file
let workers_path ~dir = Filename.concat dir workers_file
let owner_path ~dir = Filename.concat dir owner_file
let campaign_dir ~root spec = Filename.concat root spec.Spec.name

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Write-then-rename: a reader (or a post-SIGKILL `campaign report`)
   sees either the old file or the new one, never a torn prefix. The
   temp file lives in the same directory so the rename stays within one
   filesystem. *)
let write_atomic ~path content =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  match
    Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc content);
    Unix.rename tmp path
  with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let save_manifest ~dir spec =
  mkdir_p dir;
  write_atomic ~path:(manifest_path ~dir)
    (Json.to_string (Spec.to_json spec) ^ "\n")

let load_manifest ~dir =
  let path = manifest_path ~dir in
  if not (Sys.file_exists path) then Error (Fmt.str "no campaign manifest at %s" path)
  else
    match In_channel.with_open_text path In_channel.input_all with
    | text -> Result.bind (Json.of_string (String.trim text)) Spec.of_json
    | exception Sys_error m -> Error m

(* ---- journal ownership (coordinator incarnations) ---- *)

let load_epoch ~dir =
  match In_channel.with_open_text (owner_path ~dir) In_channel.input_all with
  | text -> (
      match Json.of_string (String.trim text) with
      | Ok j -> (
          match Option.bind (Json.member "epoch" j) Json.get_int with
          | Some e when e > 0 -> e
          | Some _ | None -> 0)
      | Error _ -> 0)
  | exception Sys_error _ -> 0

(* Epochs are strictly increasing across incarnations and start at 1;
   an unreadable or torn owner file counts as epoch 0 (never owned), so
   a first claim after corruption still fences every older grant. The
   write is atomic — a crash mid-claim leaves the previous owner file,
   and the next claim bumps past it again. *)
let claim_ownership ~dir =
  mkdir_p dir;
  let epoch = load_epoch ~dir + 1 in
  write_atomic ~path:(owner_path ~dir)
    (Json.to_string
       (Json.Obj
          [
            ("version", Json.Int 1);
            ("epoch", Json.Int epoch);
            ("pid", Json.Int (Unix.getpid ()));
            ("claimed_at", Json.Float (Unix.gettimeofday ()));
          ])
    ^ "\n");
  epoch

(* ---- resume state ---- *)

type t = { mask : Bytes.t; total : int; mutable completed : int; mutable failures : int }

let fresh ~total =
  { mask = Bytes.make ((total + 7) / 8) '\000'; total; completed = 0; failures = 0 }

let is_done st id =
  id >= 0 && id < st.total
  && Char.code (Bytes.get st.mask (id lsr 3)) land (1 lsl (id land 7)) <> 0

let mark st id ~ok =
  if id >= 0 && id < st.total && not (is_done st id) then begin
    Bytes.set st.mask (id lsr 3)
      (Char.chr (Char.code (Bytes.get st.mask (id lsr 3)) lor (1 lsl (id land 7))));
    st.completed <- st.completed + 1;
    if not ok then st.failures <- st.failures + 1
  end

let completed st = st.completed
let failures st = st.failures

let scan ~dir ~total =
  let st = fresh ~total in
  Journal.fold ~path:(journal_path ~dir) ~init:()
    ~f:(fun () r -> mark st r.Journal.trial ~ok:r.Journal.ok);
  st

(* The shared open/resume protocol of every campaign executor (the
   in-process pool and the distributed coordinator): manifest guard,
   torn-tail repair, journal replay. *)
let open_campaign ?(resume = false) ?(on_warn = fun _ -> ()) ~root spec =
  let ( let* ) = Result.bind in
  let dir = campaign_dir ~root spec in
  let manifest_exists = Sys.file_exists (manifest_path ~dir) in
  let* () =
    if manifest_exists && not resume then
      Error
        (Fmt.str "campaign %S already exists under %s (use resume, or pick a new name)"
           spec.Spec.name root)
    else Ok ()
  in
  let* () =
    if not manifest_exists then begin
      save_manifest ~dir spec;
      Ok ()
    end
    else
      let* recorded = load_manifest ~dir in
      if Spec.equal recorded spec then Ok ()
      else Error (Fmt.str "manifest under %s disagrees with the spec; refusing to resume" dir)
  in
  let total = Grid.total_trials spec in
  (* Repair a crash-torn journal tail before any append-mode writer
     reopens the file, or the first new record would concatenate onto
     the torn bytes and corrupt both. *)
  if resume then begin
    let r = Journal.recover ~path:(journal_path ~dir) in
    Option.iter on_warn r.Journal.warning
  end;
  let st = if resume then scan ~dir ~total else fresh ~total in
  Ok (dir, st)
