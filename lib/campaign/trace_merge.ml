(* Merging per-process Chrome traces into one: each input becomes a pid
   row, named via a process_name metadata event, so a campaign's
   coordinator and workers land side by side on one Perfetto timeline.
   Pure Json -> Json; file parsing and writing stay in the CLI. *)

module Tracer = Ffault_telemetry.Tracer

(* Drained tracer events as pid-less Chrome spans ("ts" in µs, Chrome's
   native unit) — the shape workers ship on heartbeats and [merge]
   stamps pids onto. *)
let of_tracer_events evs =
  List.map
    (fun (e : Tracer.event) ->
      Json.Obj
        [
          ("name", Json.Str e.Tracer.name);
          ("cat", Json.Str e.Tracer.cat);
          ("ph", Json.Str (String.make 1 e.Tracer.ph));
          ("ts", Json.Float (float_of_int e.Tracer.ts_ns /. 1e3));
          ("tid", Json.Int e.Tracer.tid);
        ])
    evs

let events_of_trace j =
  match j with
  | Json.Obj _ -> (
      match Json.member "traceEvents" j with
      | Some (Json.List evs) -> evs
      | Some _ | None -> [])
  | Json.List evs -> evs
  | _ -> []

(* Stamp [pid] on one event, replacing any pid the source process wrote
   (its own OS pid is meaningless once rows are merged). *)
let with_pid pid ev =
  match ev with
  | Json.Obj fields ->
      Json.Obj (List.filter (fun (k, _) -> k <> "pid") fields @ [ ("pid", Json.Int pid) ])
  | other -> other

let process_name ~pid name =
  Json.Obj
    [
      ("name", Json.Str "process_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ ("name", Json.Str name) ]);
    ]

(* A source's own process_name metadata would fight the fresh row label
   once its pid is reassigned (e.g. merging an already-merged trace). *)
let is_process_name ev =
  match ev with
  | Json.Obj _ -> Json.member "name" ev = Some (Json.Str "process_name")
  | _ -> false

let merge inputs =
  let rows =
    List.mapi
      (fun i (label, events) ->
        let pid = i + 1 in
        process_name ~pid label
        :: List.map (with_pid pid) (List.filter (fun e -> not (is_process_name e)) events))
      inputs
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.concat rows));
      ("displayTimeUnit", Json.Str "ms");
    ]
