module Table = Ffault_stats.Table
module Summary = Ffault_stats.Summary
module Classify = Ffault_hoare.Classify

type cell_stats = {
  cell : Grid.cell;
  in_envelope : bool;
  trials : int;
  failures : int;
  failure_rate : float;
  timeouts : int;
  quarantined : int;
  retries : int;
  steps : Summary.t;  (** per-trial worst per-process operation count *)
  total_faults : int;
  total_crashes : int;  (** crash-restarts charged across the cell's trials *)
  attr_crash_only : int;
      (** violating trials whose only charged faults were crash-restarts *)
  attr_primitive_only : int;
      (** violating trials with primitive faults but no crash *)
  attr_mixed : int;  (** violating trials with both *)
  witnesses : int;
  min_witness_len : int option;
  mean_wall_us : float;
}

type health = {
  timeouts : int;
  quarantined : int;
  retries : int;
  degraded_cells : string list;
  journal : Journal.health option;
}

type t = {
  spec : Spec.t;
  cells : cell_stats list;  (** grid order; cells with no records omitted *)
  total_trials : int;
  total_failures : int;
  health : health;
  telemetry : Json.t option;  (** last run's metrics snapshot, if journaled *)
  workers : Json.t option;  (** [workers.json] from a distributed run *)
}

(* ---- aggregation ---- *)

type acc = {
  mutable a_trials : int;
  mutable a_failures : int;
  mutable a_timeouts : int;
  mutable a_quarantined : int;
  mutable a_retries : int;
  a_steps : Summary.t;
  mutable a_faults : int;
  mutable a_crashes : int;
  mutable a_attr_crash : int;
  mutable a_attr_prim : int;
  mutable a_attr_mixed : int;
  mutable a_witnesses : int;
  mutable a_min_wit : int option;
  mutable a_wall : float;
}

let of_records ?telemetry ?workers ?journal_health spec records =
  let protocol =
    match Spec.resolve_protocol spec.Spec.protocol with
    | Ok p -> Some p
    | Error _ -> None
  in
  let cells = Grid.cells spec in
  let n_cells = Array.length cells in
  let accs =
    Array.init n_cells (fun _ ->
        {
          a_trials = 0;
          a_failures = 0;
          a_timeouts = 0;
          a_quarantined = 0;
          a_retries = 0;
          a_steps = Summary.create ();
          a_faults = 0;
          a_crashes = 0;
          a_attr_crash = 0;
          a_attr_prim = 0;
          a_attr_mixed = 0;
          a_witnesses = 0;
          a_min_wit = None;
          a_wall = 0.0;
        })
  in
  let total = ref 0 in
  let total_failures = ref 0 in
  List.iter
    (fun (r : Journal.record) ->
      let cell_id = r.Journal.trial / spec.Spec.trials in
      if cell_id >= 0 && cell_id < n_cells then begin
        let a = accs.(cell_id) in
        a.a_trials <- a.a_trials + 1;
        incr total;
        (* [ok = false] is not [failure]: a Timeout is a harness verdict
           and a Quarantined trial never ran — neither says anything
           about the protocol, so neither belongs in the failure rate. *)
        (match r.Journal.outcome with
        | Journal.Violation -> (
            a.a_failures <- a.a_failures + 1;
            incr total_failures;
            (* Attribute each violation to the fault dimensions that were
               actually charged in the violating run: crash-restarts,
               primitive faults, or both. *)
            match
              Classify.attribute ~crashes:r.Journal.crash_faults
                ~primitive:r.Journal.faults
            with
            | Classify.Crash_only -> a.a_attr_crash <- a.a_attr_crash + 1
            | Classify.Primitive_only -> a.a_attr_prim <- a.a_attr_prim + 1
            | Classify.Mixed -> a.a_attr_mixed <- a.a_attr_mixed + 1
            | Classify.No_fault -> ())
        | Journal.Timeout -> a.a_timeouts <- a.a_timeouts + 1
        | Journal.Quarantined -> a.a_quarantined <- a.a_quarantined + 1
        | Journal.Pass -> ());
        a.a_retries <- a.a_retries + r.Journal.retries;
        if r.Journal.outcome <> Journal.Quarantined then begin
          (* quarantined trials never executed; their zero step counts
             would drag every ops statistic toward zero *)
          Summary.add_int a.a_steps r.Journal.max_steps;
          a.a_faults <- a.a_faults + r.Journal.faults;
          a.a_crashes <- a.a_crashes + r.Journal.crash_faults;
          a.a_wall <- a.a_wall +. float_of_int r.Journal.wall_us
        end;
        match r.Journal.witness with
        | Some w ->
            a.a_witnesses <- a.a_witnesses + 1;
            let l = Array.length w in
            a.a_min_wit <-
              (match a.a_min_wit with Some m when m <= l -> Some m | _ -> Some l)
        | None -> ()
      end)
    records;
  let cell_stats =
    List.filter_map
      (fun cell_id ->
        let a = accs.(cell_id) in
        if a.a_trials = 0 then None
        else
          let cell = cells.(cell_id) in
          let ran = a.a_trials - a.a_quarantined in
          Some
            {
              cell;
              in_envelope =
                (match protocol with Some p -> Grid.in_envelope cell p | None -> false);
              trials = a.a_trials;
              failures = a.a_failures;
              failure_rate = float_of_int a.a_failures /. float_of_int a.a_trials;
              timeouts = a.a_timeouts;
              quarantined = a.a_quarantined;
              retries = a.a_retries;
              steps = a.a_steps;
              total_faults = a.a_faults;
              total_crashes = a.a_crashes;
              attr_crash_only = a.a_attr_crash;
              attr_primitive_only = a.a_attr_prim;
              attr_mixed = a.a_attr_mixed;
              witnesses = a.a_witnesses;
              min_witness_len = a.a_min_wit;
              mean_wall_us = (if ran = 0 then 0.0 else a.a_wall /. float_of_int ran);
            })
      (List.init n_cells Fun.id)
  in
  let health =
    {
      timeouts = List.fold_left (fun s (c : cell_stats) -> s + c.timeouts) 0 cell_stats;
      quarantined =
        List.fold_left (fun s (c : cell_stats) -> s + c.quarantined) 0 cell_stats;
      retries = List.fold_left (fun s (c : cell_stats) -> s + c.retries) 0 cell_stats;
      degraded_cells =
        List.filter_map
          (fun (c : cell_stats) ->
            if c.quarantined > 0 then Some (Grid.cell_key c.cell) else None)
          cell_stats;
      journal = journal_health;
    }
  in
  {
    spec;
    cells = cell_stats;
    total_trials = !total;
    total_failures = !total_failures;
    health;
    telemetry;
    workers;
  }

(* [workers.json] parses like [telemetry.json]: best-effort, [None] on
   absent or unparsable (single-process campaigns never write one). *)
let load_workers ~dir =
  let path = Checkpoint.workers_path ~dir in
  if not (Sys.file_exists path) then None
  else
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error _ -> None
    | contents -> (
        match Json.of_string (String.trim contents) with
        | Ok j -> Some j
        | Error _ -> None)

let of_dir ~dir =
  match Checkpoint.load_manifest ~dir with
  | Error _ as e -> e
  | Ok spec ->
      let path = Checkpoint.journal_path ~dir in
      Ok
        (of_records
           ?telemetry:(Telemetry_io.load ~dir)
           ?workers:(load_workers ~dir)
           ~journal_health:(Journal.health ~path)
           spec (Journal.load ~path))

(* ---- rendering ---- *)

let to_table report =
  (* Crash columns only appear on campaigns that sweep a crash axis, so
     crash-free reports keep their historical shape byte-for-byte. *)
  let crashing = Spec.has_crash_axes report.spec in
  let crash_columns =
    if crashing then [ "crashes"; "crash rate"; "persist"; "crash faults"; "attribution" ]
    else []
  in
  let table =
    Table.create
      ~columns:
        ([
           "f"; "t"; "n"; "kind"; "rate"; "envelope"; "trials"; "failures"; "fail rate";
           "mean ops"; "p99 ops"; "max ops"; "faults"; "min witness";
         ]
        @ crash_columns)
  in
  List.iter
    (fun c ->
      let crash_cells =
        if not crashing then []
        else
          [
            Table.cell_int c.cell.Grid.crashes;
            Table.cell_float ~decimals:2 c.cell.Grid.crash_rate;
            Ffault_recover.Persistence.to_string c.cell.Grid.persistence;
            Table.cell_int c.total_crashes;
            (* which fault dimension the cell's violations charge:
               c = crash-only, p = primitive-only, m = mixed *)
            (if c.failures = 0 then "-"
             else
               Fmt.str "%dc/%dp/%dm" c.attr_crash_only c.attr_primitive_only
                 c.attr_mixed);
          ]
      in
      Table.add_row table
        ([
           Table.cell_int c.cell.Grid.f;
           Table.cell_opt Table.cell_int c.cell.Grid.t;
           Table.cell_int c.cell.Grid.n;
           Ffault_fault.Fault_kind.to_string c.cell.Grid.kind;
           Table.cell_float ~decimals:2 c.cell.Grid.rate;
           (if c.in_envelope then "in" else "out");
           Table.cell_int c.trials;
           (* (!!) marks theorem violations: failures in a cell the proof
              covers. Out-of-envelope failures are expected data. *)
           (if c.failures = 0 then "0"
            else if c.in_envelope then Fmt.str "%d (!!)" c.failures
            else Table.cell_int c.failures);
           Table.cell_float ~decimals:4 c.failure_rate;
           Table.cell_float ~decimals:1 (Summary.mean c.steps);
           Table.cell_float ~decimals:0 (Summary.percentile c.steps 99.0);
           Table.cell_float ~decimals:0 (Summary.max_value c.steps);
           Table.cell_int c.total_faults;
           Table.cell_opt Table.cell_int c.min_witness_len;
         ]
        @ crash_cells))
    report.cells;
  table

(* The counters section of the embedded telemetry snapshot, as a small
   markdown table (histograms and gauges stay JSON-only — the counters
   are what a human scans for "did the faults actually fire"). *)
let telemetry_markdown json =
  match Option.bind json (Json.member "counters") with
  | Some (Json.Obj ((_ :: _) as counters)) ->
      let t = Table.create ~columns:[ "counter"; "value" ] in
      List.iter
        (fun (name, v) ->
          Table.add_row t [ name; (match Json.get_int v with Some i -> Table.cell_int i | None -> "?") ])
        counters;
      Fmt.str "@.## Telemetry@.@.%s" (Table.to_string t)
  | _ -> ""

(* The Workers section of a distributed campaign ([workers.json]):
   per-worker lease and result counts, plus the lease ledger line that
   shows whether any shard had to be reassigned. Absent on
   single-process campaigns, so their reports keep the old shape. *)
let workers_markdown json =
  let int_of name j = Option.bind (Json.member name j) Json.get_int in
  let str_of name j =
    match Option.bind (Json.member name j) Json.get_str with Some s -> s | None -> "?"
  in
  let cell name j =
    match int_of name j with Some i -> Table.cell_int i | None -> "?"
  in
  match Option.bind json (Json.member "workers") with
  | Some (Json.List ((_ :: _) as workers)) ->
      let t =
        Table.create
          ~columns:
            [
              "worker"; "peer"; "domains"; "leases"; "completed"; "expired"; "results";
              "deduped"; "reconnects";
            ]
      in
      List.iter
        (fun w ->
          Table.add_row t
            [
              str_of "name" w;
              str_of "peer" w;
              cell "domains" w;
              cell "granted" w;
              cell "completed" w;
              cell "expired" w;
              cell "results" w;
              cell "deduped" w;
              cell "reconnects" w;
            ])
        workers;
      let leases =
        match Option.bind json (Json.member "leases") with
        | Some l ->
            let n name = match int_of name l with Some i -> i | None -> 0 in
            let expired = n "expired" in
            Fmt.str "%d lease(s) granted, %d completed, %d expired%s.@.@."
              (n "granted") (n "completed") expired
              (if expired > 0 then " and reassigned" else "")
        | None -> ""
      in
      (* coordinator incarnation (workers.json with epoch fencing):
         anything past epoch 1 means the coordinator crashed and a
         restart recovered the campaign from the journal — worth a line
         in the human report. Absent on older artifacts. *)
      let incarnation =
        match Option.bind json (int_of "epoch") with
        | Some epoch when epoch > 1 ->
            let restarts =
              match Option.bind json (int_of "restarts") with Some r -> r | None -> epoch - 1
            in
            Fmt.str
              "Coordinator epoch %d: %d restart(s) recovered from the journal.@.@."
              epoch restarts
        | _ -> ""
      in
      (* fleet-wide counters (workers.json v2): per-worker snapshots
         summed by the coordinator — absent on pre-observability
         artifacts, and then so is this table *)
      let fleet =
        match Option.bind json (Json.member "fleet") with
        | Some (Json.Obj ((_ :: _) as counters)) ->
            let ft = Table.create ~columns:[ "counter"; "fleet total" ] in
            List.iter
              (fun (name, v) ->
                Table.add_row ft
                  [ name; (match Json.get_int v with Some i -> Table.cell_int i | None -> "?") ])
              counters;
            Fmt.str "@.### Fleet telemetry@.@.%s" (Table.to_string ft)
        | _ -> ""
      in
      Fmt.str "@.## Workers@.@.%s%s%s%s" incarnation leases (Table.to_string t) fleet
  | _ -> ""

(* Rendered only when there is something to say: an all-healthy
   unsupervised campaign keeps the old report shape byte-for-byte. *)
let health_markdown report =
  let h = report.health in
  let journal_note =
    match h.journal with
    | Some j when j.Journal.h_malformed > 0 ->
        Fmt.str
          "- journal: %d of %d line(s) malformed — not crash damage (appends are \
           sequential); those trials re-run on resume, but the file deserves a look@."
          j.Journal.h_malformed j.Journal.h_lines
    | _ -> ""
  in
  if h.timeouts = 0 && h.quarantined = 0 && h.retries = 0 && journal_note = "" then ""
  else
    Fmt.str
      "@.## Health@.@.- %d trial(s) timed out at the deadline@.- %d retry attempt(s)@.- \
       %d trial(s) quarantined%s@.%s"
      h.timeouts h.retries h.quarantined
      (match h.degraded_cells with
      | [] -> ""
      | cells -> Fmt.str " (degraded cells: %s)" (String.concat ", " cells))
      journal_note

let to_markdown report =
  Fmt.str "# Campaign %s@.@.%a@.@.%d trials journaled, %d failures.@.@.%s@.%s%s%s"
    report.spec.Spec.name Spec.pp report.spec report.total_trials report.total_failures
    (Table.to_string (to_table report))
    (health_markdown report)
    (workers_markdown report.workers)
    (telemetry_markdown report.telemetry)

let health_json h =
  Json.Obj
    ([
       ("timeouts", Json.Int h.timeouts);
       ("retries", Json.Int h.retries);
       ("quarantined", Json.Int h.quarantined);
       ("degraded_cells", Json.List (List.map (fun k -> Json.Str k) h.degraded_cells));
     ]
    @
    match h.journal with
    | None -> []
    | Some j ->
        [
          ( "journal",
            Json.Obj
              [
                ("lines", Json.Int j.Journal.h_lines);
                ("parsed", Json.Int j.Journal.h_parsed);
                ("malformed", Json.Int j.Journal.h_malformed);
              ] );
        ])

let to_json report =
  Json.Obj
    ([
       ("spec", Spec.to_json report.spec);
       ("total_trials", Json.Int report.total_trials);
       ("total_failures", Json.Int report.total_failures);
       ("health", health_json report.health);
     ]
    @ (match report.telemetry with Some t -> [ ("telemetry", t) ] | None -> [])
    @ (match report.workers with Some w -> [ ("workers", w) ] | None -> [])
    @ [
      ( "cells",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 ([
                    ("key", Json.Str (Grid.cell_key c.cell));
                    ("in_envelope", Json.Bool c.in_envelope);
                    ("trials", Json.Int c.trials);
                    ("failures", Json.Int c.failures);
                    ("failure_rate", Json.Float c.failure_rate);
                    ("timeouts", Json.Int c.timeouts);
                    ("quarantined", Json.Int c.quarantined);
                    ("retries", Json.Int c.retries);
                    ("mean_ops", Json.Float (Summary.mean c.steps));
                    ("p99_ops", Json.Float (Summary.percentile c.steps 99.0));
                    ("max_ops", Json.Float (Summary.max_value c.steps));
                    ("faults", Json.Int c.total_faults);
                    ( "min_witness_len",
                      match c.min_witness_len with Some l -> Json.Int l | None -> Json.Null );
                    ("mean_wall_us", Json.Float c.mean_wall_us);
                  ]
                 @
                 if not (Spec.has_crash_axes report.spec) then []
                 else
                   [
                     ("crashes", Json.Int c.cell.Grid.crashes);
                     ("crash_rate", Json.Float c.cell.Grid.crash_rate);
                     ( "persistence",
                       Json.Str
                         (Ffault_recover.Persistence.to_string c.cell.Grid.persistence) );
                     ("crash_faults", Json.Int c.total_crashes);
                     ("attr_crash_only", Json.Int c.attr_crash_only);
                     ("attr_primitive_only", Json.Int c.attr_primitive_only);
                     ("attr_mixed", Json.Int c.attr_mixed);
                   ]))
             report.cells) );
      ])

let write ~dir report =
  Out_channel.with_open_text (Filename.concat dir "report.md") (fun oc ->
      output_string oc (to_markdown report));
  Out_channel.with_open_text (Filename.concat dir "report.json") (fun oc ->
      output_string oc (Json.to_string (to_json report));
      output_char oc '\n')

(* ---- regression diff ---- *)

type diff_row = {
  key : string;
  rate_a : float;
  rate_b : float;
  delta : float;
  steps_a : float;
  steps_b : float;
  regression : bool;
}

type diff = {
  rows : diff_row list;
  regressions : int;
  only_a : string list;
  only_b : string list;
}

let default_tolerance = 0.02

let diff ?(tolerance = default_tolerance) a b =
  let index report =
    List.map (fun c -> (Grid.cell_key c.cell, c)) report.cells
  in
  let ia = index a and ib = index b in
  let rows =
    List.filter_map
      (fun (key, ca) ->
        match List.assoc_opt key ib with
        | None -> None
        | Some cb ->
            let delta = cb.failure_rate -. ca.failure_rate in
            let regression =
              (* a newly-failing cell is always a regression; otherwise
                 the rate must move beyond the sampling tolerance *)
              (ca.failures = 0 && cb.failures > 0) || delta > tolerance
            in
            Some
              {
                key;
                rate_a = ca.failure_rate;
                rate_b = cb.failure_rate;
                delta;
                steps_a = Summary.mean ca.steps;
                steps_b = Summary.mean cb.steps;
                regression;
              })
      ia
  in
  let missing ia ib =
    List.filter_map
      (fun (key, _) -> if List.mem_assoc key ib then None else Some key)
      ia
  in
  {
    rows;
    regressions = List.length (List.filter (fun r -> r.regression) rows);
    only_a = missing ia ib;
    only_b = missing ib ia;
  }

let diff_table d =
  let table =
    Table.create
      ~columns:[ "cell"; "fail rate A"; "fail rate B"; "delta"; "mean ops A"; "mean ops B"; "verdict" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.key;
          Table.cell_float ~decimals:4 r.rate_a;
          Table.cell_float ~decimals:4 r.rate_b;
          Fmt.str "%+.4f" r.delta;
          Table.cell_float ~decimals:1 r.steps_a;
          Table.cell_float ~decimals:1 r.steps_b;
          (if r.regression then "REGRESSION" else "ok");
        ])
    d.rows;
  table

let pp_diff ppf d =
  Fmt.pf ppf "%s" (Table.to_string (diff_table d));
  List.iter (fun k -> Fmt.pf ppf "only in A: %s@." k) d.only_a;
  List.iter (fun k -> Fmt.pf ppf "only in B: %s@." k) d.only_b;
  if d.regressions = 0 then Fmt.pf ppf "No regressions.@."
  else Fmt.pf ppf "%d regression(s).@." d.regressions
