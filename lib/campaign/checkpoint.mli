(** Campaign persistence layout and resume state.

    A campaign lives under [<root>/<name>/] (default root
    [_campaigns/]): [manifest.json] is the spec that defines the grid;
    [journal.jsonl] is the trial journal. Resume = load the manifest,
    replay the journal into a done-bitmask, and run only the missing
    trial ids — already-journaled trials are never re-executed. *)

val campaign_dir : root:string -> Spec.t -> string
val manifest_path : dir:string -> string
val journal_path : dir:string -> string

val telemetry_path : dir:string -> string
(** [telemetry.json] — the metrics snapshot of the last [run]/[resume]
    (see {!Telemetry_io}). *)

val workers_path : dir:string -> string
(** [workers.json] — per-worker lease statistics written by the
    distributed coordinator ([ffault campaign serve]); {!Report.of_dir}
    renders it as the report's Workers section. Absent on
    single-process campaigns. *)

val owner_path : dir:string -> string
(** [owner.json] — the journal-ownership record of the distributed
    coordinator: which incarnation (epoch) currently owns the right to
    append. Absent on single-process campaigns. *)

val mkdir_p : string -> unit

val write_atomic : path:string -> string -> unit
(** Write [content] to a same-directory temp file and rename it over
    [path], so a crash mid-write can never leave a torn file. Used for
    every whole-file snapshot ([manifest.json], [workers.json],
    [telemetry.json]); the append-only journal has its own torn-tail
    recovery instead. *)

val save_manifest : dir:string -> Spec.t -> unit
(** Creates [dir] (and parents) as needed; the write is atomic
    ({!write_atomic}). *)

val load_manifest : dir:string -> (Spec.t, string) result

(** {2 Journal ownership} *)

val load_epoch : dir:string -> int
(** The epoch recorded in [owner.json]; 0 when the file is absent,
    torn, or carries no positive epoch — "never owned". *)

val claim_ownership : dir:string -> int
(** Take (or re-take) journal ownership: bump the recorded epoch by one
    and persist it via {!write_atomic}, returning the new epoch
    (strictly positive, strictly increasing across claims). A restarted
    coordinator claims before serving, so every grant it makes carries
    an epoch no previous incarnation ever used — the fencing token of
    recoverable-consensus-style crash recovery. *)

(** {2 Resume state} *)

type t
(** A done-bitmask over the trial-id space plus completion counters.
    [mark] is idempotent per id, so duplicate journal records (possible
    if a run was killed between write and, say, an fsync of a copy)
    count once. Not thread-safe; the executor consults it only from the
    consume path, which is already serialized. *)

val fresh : total:int -> t
val scan : dir:string -> total:int -> t
(** Replay the journal (missing file = empty). *)

val is_done : t -> int -> bool
val mark : t -> int -> ok:bool -> unit
val completed : t -> int
val failures : t -> int

val open_campaign :
  ?resume:bool ->
  ?on_warn:(string -> unit) ->
  root:string ->
  Spec.t ->
  (string * t, string) result
(** The open/resume protocol shared by every campaign executor (the
    in-process {!Pool} and the distributed coordinator): guard the
    manifest (fresh run must not clobber, resume must agree with the
    recorded spec), repair a crash-torn journal tail
    ({!Journal.recover}, surfaced through [on_warn]) {e before} the
    journal is reopened for append, and replay the journal into the
    resume state. Returns the campaign directory and the done-mask
    (empty for a fresh run). *)
