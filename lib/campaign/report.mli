(** Journal aggregation: per-cell statistics, rendered reports, and
    regression diffs between two campaign runs.

    Aggregation is streaming-friendly (per-cell
    {!Ffault_stats.Summary} accumulators, which cap their percentile
    reservoirs), so million-trial journals aggregate in bounded
    memory. *)

type cell_stats = {
  cell : Grid.cell;
  in_envelope : bool;
      (** the protocol's theorem covers this cell — failures here are
          regressions, not data *)
  trials : int;
  failures : int;  (** [Violation] records only — see {!health} *)
  failure_rate : float;
  timeouts : int;
  quarantined : int;
  retries : int;
  steps : Ffault_stats.Summary.t;  (** per-trial worst ops/process *)
  total_faults : int;
  total_crashes : int;  (** crash-restarts charged across the cell's trials *)
  attr_crash_only : int;
      (** violating trials whose only charged faults were crash-restarts
          ({!Ffault_hoare.Classify.attribute}) *)
  attr_primitive_only : int;
      (** violating trials with primitive faults but no crash *)
  attr_mixed : int;  (** violating trials charging both dimensions *)
  witnesses : int;
  min_witness_len : int option;
  mean_wall_us : float;  (** over trials that actually ran *)
}
(** Crash statistics render (markdown columns, JSON fields) only when
    the spec sweeps a crash axis ({!Spec.has_crash_axes}) — crash-free
    reports keep their historical shape. *)

type health = {
  timeouts : int;
  quarantined : int;
  retries : int;
  degraded_cells : string list;  (** {!Grid.cell_key}s with quarantined trials *)
  journal : Journal.health option;  (** set by {!of_dir} *)
}
(** Harness health, distinct from protocol results: a [Timeout] is the
    harness giving up, a [Quarantined] trial never ran — neither counts
    as a failure, both are surfaced here (markdown [## Health] section,
    JSON ["health"] object — omitted from markdown when all-clean, so
    unsupervised reports keep their old shape). *)

type t = {
  spec : Spec.t;
  cells : cell_stats list;
  total_trials : int;
  total_failures : int;
  health : health;
  telemetry : Json.t option;
      (** the run's metrics snapshot ([telemetry.json], written by
          {!Pool.run_dir}); embedded as the report's ["telemetry"]
          object and rendered as a counters table in the markdown *)
  workers : Json.t option;
      (** [workers.json] — per-worker lease statistics a distributed
          coordinator leaves behind; embedded as the report's
          ["workers"] object and rendered as the markdown [## Workers]
          section (absent on single-process campaigns) *)
}

val of_records :
  ?telemetry:Json.t ->
  ?workers:Json.t ->
  ?journal_health:Journal.health ->
  Spec.t ->
  Journal.record list ->
  t

val of_dir : dir:string -> (t, string) result
(** Also scans the journal file's parse health ({!Journal.health}) into
    [health.journal]. *)

val to_table : t -> Ffault_stats.Table.t
val to_markdown : t -> string
val to_json : t -> Json.t

val write : dir:string -> t -> unit
(** Write [report.md] and [report.json] into the campaign directory. *)

(** {2 Comparing two campaigns} *)

type diff_row = {
  key : string;  (** {!Grid.cell_key} *)
  rate_a : float;
  rate_b : float;
  delta : float;
  steps_a : float;
  steps_b : float;
  regression : bool;
}

type diff = {
  rows : diff_row list;  (** cells present in both campaigns *)
  regressions : int;
  only_a : string list;
  only_b : string list;
}

val default_tolerance : float
(** 0.02 — failure-rate increase below this is sampling noise. *)

val diff : ?tolerance:float -> t -> t -> diff
(** B regressed against A on a cell if the cell newly fails (A had zero
    failures, B has some) or its failure rate rose by more than
    [tolerance]. *)

val diff_table : diff -> Ffault_stats.Table.t
val pp_diff : Format.formatter -> diff -> unit
