module Fault_kind = Ffault_fault.Fault_kind
module Persistence = Ffault_recover.Persistence

type outcome = Pass | Violation | Timeout | Quarantined

let outcome_to_string = function
  | Pass -> "pass"
  | Violation -> "violation"
  | Timeout -> "timeout"
  | Quarantined -> "quarantined"

let outcome_of_string = function
  | "pass" -> Some Pass
  | "violation" -> Some Violation
  | "timeout" -> Some Timeout
  | "quarantined" -> Some Quarantined
  | _ -> None

let pp_outcome ppf o = Fmt.string ppf (outcome_to_string o)

type record = {
  trial : int;
  cell : Grid.cell;
  seed : int64;
  ok : bool;
  outcome : outcome;
  retries : int;
  violations : string list;
  steps : int;
  max_steps : int;
  stage : int;
  faults : int;
  crash_faults : int;  (** crash-restarts charged during the trial *)
  wall_us : int;
  witness : int array option;
}

(* ---- JSON codec ---- *)

let to_json r =
  let base =
    [
      ("trial", Json.Int r.trial);
      ("f", Json.Int r.cell.Grid.f);
      ("t", match r.cell.Grid.t with Some t -> Json.Int t | None -> Json.Null);
      ("n", Json.Int r.cell.Grid.n);
      ("kind", Json.Str (Fault_kind.to_string r.cell.Grid.kind));
      ("rate", Json.Float r.cell.Grid.rate);
      ("seed", Json.Str (Int64.to_string r.seed));
      ("ok", Json.Bool r.ok);
      ("outcome", Json.Str (outcome_to_string r.outcome));
      ("retries", Json.Int r.retries);
      ("violations", Json.List (List.map (fun v -> Json.Str v) r.violations));
      ("steps", Json.Int r.steps);
      ("max_steps", Json.Int r.max_steps);
      ("stage", Json.Int r.stage);
      ("faults", Json.Int r.faults);
      ("wall_us", Json.Int r.wall_us);
    ]
  in
  (* Crash fields only appear for crash cells: crash-free records stay
     byte-identical to pre-recovery journals. *)
  let crash =
    if r.cell.Grid.crashes = 0 then []
    else
      [
        ("crashes", Json.Int r.cell.Grid.crashes);
        ("crash_rate", Json.Float r.cell.Grid.crash_rate);
        ("persistence", Json.Str (Persistence.to_string r.cell.Grid.persistence));
        ("crash_faults", Json.Int r.crash_faults);
      ]
  in
  let witness =
    match r.witness with
    | None -> []
    | Some w -> [ ("witness", Json.List (Array.to_list (Array.map (fun d -> Json.Int d) w))) ]
  in
  Json.Obj (base @ crash @ witness)

let of_json json =
  let ( let* ) = Result.bind in
  let field key project =
    match Option.bind (Json.member key json) project with
    | Some v -> Ok v
    | None -> Error (Fmt.str "journal record: missing or malformed %S" key)
  in
  let* trial = field "trial" Json.get_int in
  let* f = field "f" Json.get_int in
  let* t =
    field "t" (function Json.Null -> Some None | j -> Option.map Option.some (Json.get_int j))
  in
  let* n = field "n" Json.get_int in
  let* kind = field "kind" (fun j -> Option.bind (Json.get_str j) Fault_kind.of_string) in
  let* rate = field "rate" Json.get_float in
  let* seed = field "seed" (fun j -> Option.bind (Json.get_str j) Int64.of_string_opt) in
  let* ok = field "ok" Json.get_bool in
  (* Both supervision fields default for pre-supervision journals (PR 1-3):
     outcome is inferred from ok, retries from absence. *)
  let* outcome =
    match Json.member "outcome" json with
    | None -> Ok (if ok then Pass else Violation)
    | Some j -> (
        match Option.bind (Json.get_str j) outcome_of_string with
        | Some o -> Ok o
        | None -> Error "journal record: malformed outcome")
  in
  let* retries =
    match Json.member "retries" json with
    | None -> Ok 0
    | Some j -> (
        match Json.get_int j with
        | Some r when r >= 0 -> Ok r
        | Some _ | None -> Error "journal record: malformed retries")
  in
  let* violations =
    field "violations" (fun j ->
        Option.bind (Json.get_list j) (fun items ->
            let vs = List.filter_map Json.get_str items in
            if List.length vs = List.length items then Some vs else None))
  in
  let* steps = field "steps" Json.get_int in
  let* max_steps = field "max_steps" Json.get_int in
  let* stage = field "stage" Json.get_int in
  let* faults = field "faults" Json.get_int in
  let* wall_us = field "wall_us" Json.get_int in
  (* Crash fields default for crash-free records (and pre-recovery
     journals, which predate the crash axes entirely). *)
  let* crashes =
    match Json.member "crashes" json with
    | None -> Ok 0
    | Some j -> (
        match Json.get_int j with
        | Some c when c >= 0 -> Ok c
        | Some _ | None -> Error "journal record: malformed crashes")
  in
  let* crash_rate =
    match Json.member "crash_rate" json with
    | None -> Ok 0.0
    | Some j -> (
        match Json.get_float j with
        | Some r -> Ok r
        | None -> Error "journal record: malformed crash_rate")
  in
  let* persistence =
    match Json.member "persistence" json with
    | None -> Ok Persistence.Persist_all
    | Some j -> (
        match Json.get_str j with
        | Some s -> (
            match Persistence.of_string s with
            | Ok m -> Ok m
            | Error _ -> Error "journal record: malformed persistence")
        | None -> Error "journal record: malformed persistence")
  in
  let* crash_faults =
    match Json.member "crash_faults" json with
    | None -> Ok 0
    | Some j -> (
        match Json.get_int j with
        | Some c when c >= 0 -> Ok c
        | Some _ | None -> Error "journal record: malformed crash_faults")
  in
  let* witness =
    match Json.member "witness" json with
    | None -> Ok None
    | Some j -> (
        match
          Option.bind (Json.get_list j) (fun items ->
              let vs = List.filter_map Json.get_int items in
              if List.length vs = List.length items then Some vs else None)
        with
        | Some vs -> Ok (Some (Array.of_list vs))
        | None -> Error "journal record: malformed witness")
  in
  Ok
    {
      trial;
      cell = { Grid.f; t; n; kind; rate; crashes; crash_rate; persistence };
      seed;
      ok;
      outcome;
      retries;
      violations;
      steps;
      max_steps;
      stage;
      faults;
      crash_faults;
      wall_us;
      witness;
    }

let to_line r = Json.to_string (to_json r)

let of_line line =
  match Json.of_string line with Ok j -> of_json j | Error m -> Error m

(* ---- append writer (shared by all worker domains) ---- *)

module Metrics = Ffault_telemetry.Metrics
module Tracer = Ffault_telemetry.Tracer

let m_flushes = Metrics.counter "campaign.journal.flushes"

type writer = { oc : out_channel; lock : Mutex.t }

let create_writer ~path =
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  { oc; lock = Mutex.create () }

let append w r =
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      Tracer.with_span ~cat:"journal" "journal.append" (fun () ->
          output_string w.oc (to_line r);
          output_char w.oc '\n';
          (* flush per record: a killed campaign must lose at most the
             record being written, for resume to be sound *)
          flush w.oc;
          Metrics.incr m_flushes))

let close_writer w =
  Mutex.lock w.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock w.lock) (fun () -> close_out w.oc)

(* ---- crash recovery ---- *)

type recovery = { dropped_bytes : int; interior_torn : int; warning : string option }

let clean = { dropped_bytes = 0; interior_torn = 0; warning = None }

(* Malformed newline-terminated lines. A crash can only tear the final
   line (appends are sequential and flushed per record), so interior
   damage means something else — filesystem corruption, a concurrent
   writer, a hand-edited journal. [fold] skips such lines silently;
   recovery and the report's health section must not. *)
let count_interior_torn text =
  let torn = ref 0 in
  let next = ref 0 in
  let len = String.length text in
  while !next < len do
    match String.index_from_opt text !next '\n' with
    | None -> next := len (* unterminated tail: judged separately *)
    | Some nl ->
        let line = String.trim (String.sub text !next (nl - !next)) in
        if line <> "" && Result.is_error (of_line line) then incr torn;
        next := nl + 1
  done;
  !torn

(* A campaign killed mid-append leaves a torn final line: some prefix of
   "record\n" (the per-record flush can be delivered partially by the
   OS). Left in place, the next resume's append-mode writer would
   concatenate its first record onto the torn bytes, silently corrupting
   BOTH records for every later reader — so resume must repair the tail
   before reopening the file for append. A torn line that still parses
   just lost its newline and is completed; anything else is dropped (the
   checkpoint scan then re-runs that trial). *)
let recover ~path =
  if not (Sys.file_exists path) then clean
  else
    let text = In_channel.with_open_bin path In_channel.input_all in
    let len = String.length text in
    if len = 0 then clean
    else
      let interior_torn = count_interior_torn text in
      let interior_warning =
        if interior_torn = 0 then None
        else
          Some
            (Fmt.str
               "journal %s: %d interior record(s) do not parse — not crash damage \
                (appends are sequential); their trials will be re-run, but the file \
                deserves a look"
               path interior_torn)
      in
      let combine tail_warning =
        match interior_warning, tail_warning with
        | None, w | w, None -> w
        | Some a, Some b -> Some (a ^ "; " ^ b)
      in
      let tail_start =
        match String.rindex_opt text '\n' with Some i -> i + 1 | None -> 0
      in
      if tail_start >= len then
        (* newline-terminated: no torn tail *)
        { clean with interior_torn; warning = combine None }
      else
        let tail = String.sub text tail_start (len - tail_start) in
        match of_line (String.trim tail) with
        | Ok _ ->
            (* complete record, torn newline: finish the line *)
            Out_channel.with_open_gen [ Open_append; Open_wronly ] 0o644 path
              (fun oc -> output_char oc '\n');
            {
              dropped_bytes = 0;
              interior_torn;
              warning =
                combine
                  (Some
                     (Fmt.str
                        "journal %s: final record was missing its newline (crash \
                         mid-append); repaired"
                        path));
            }
        | Error _ ->
            let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
            Fun.protect
              ~finally:(fun () -> Unix.close fd)
              (fun () -> Unix.ftruncate fd tail_start);
            {
              dropped_bytes = len - tail_start;
              interior_torn;
              warning =
                combine
                  (Some
                     (Fmt.str
                        "journal %s: dropped a torn %d-byte partial trailing record \
                         (crash mid-append); its trial will be re-run"
                        path (len - tail_start)));
            }

(* ---- health ---- *)

type health = { h_lines : int; h_parsed : int; h_malformed : int }

let healthy = { h_lines = 0; h_parsed = 0; h_malformed = 0 }

let health ~path =
  if not (Sys.file_exists path) then healthy
  else
    In_channel.with_open_text path (fun ic ->
        let rec go h =
          match In_channel.input_line ic with
          | None -> h
          | Some line ->
              let line = String.trim line in
              if line = "" then go h
              else
                let h = { h with h_lines = h.h_lines + 1 } in
                go
                  (match of_line line with
                  | Ok _ -> { h with h_parsed = h.h_parsed + 1 }
                  | Error _ -> { h with h_malformed = h.h_malformed + 1 })
        in
        go healthy)

(* ---- reading ---- *)

let fold ~path ~init ~f =
  if not (Sys.file_exists path) then init
  else
    In_channel.with_open_text path (fun ic ->
        let rec go acc =
          match In_channel.input_line ic with
          | None -> acc
          | Some line ->
              let line = String.trim line in
              if line = "" then go acc
              else (
                (* tolerate a torn trailing line from a killed run *)
                match of_line line with Ok r -> go (f acc r) | Error _ -> go acc)
        in
        go init)

let load ~path = List.rev (fold ~path ~init:[] ~f:(fun acc r -> r :: acc))

let count ~path = fold ~path ~init:0 ~f:(fun acc _ -> acc + 1)
