module Clock = Ffault_telemetry.Clock

type t = {
  total : int;
  n_cells : int;
  started_ns : int;
  executed : int Atomic.t;
  skipped : int Atomic.t;
  failures : int Atomic.t;
  cell_done : int Atomic.t array;
  cell_fail : int Atomic.t array;
  trials_per_cell : int;
}

let create spec =
  let n_cells = Grid.n_cells spec in
  {
    total = Grid.total_trials spec;
    n_cells;
    started_ns = Clock.now_ns ();
    executed = Atomic.make 0;
    skipped = Atomic.make 0;
    failures = Atomic.make 0;
    cell_done = Array.init n_cells (fun _ -> Atomic.make 0);
    cell_fail = Array.init n_cells (fun _ -> Atomic.make 0);
    trials_per_cell = spec.Spec.trials;
  }

let on_record t (r : Journal.record) =
  Atomic.incr t.executed;
  if not r.Journal.ok then Atomic.incr t.failures;
  let cell = r.Journal.trial / t.trials_per_cell in
  if cell >= 0 && cell < t.n_cells then begin
    Atomic.incr t.cell_done.(cell);
    if not r.Journal.ok then Atomic.incr t.cell_fail.(cell)
  end

let on_skip t = Atomic.incr t.skipped

let executed t = Atomic.get t.executed
let failures t = Atomic.get t.failures

let heat_width = 48

let heat_glyph ~done_ ~fail =
  if done_ = 0 then '?'
  else if fail = 0 then '.'
  else
    let decile =
      int_of_float (Float.of_int fail /. Float.of_int done_ *. 10.0)
    in
    Char.chr (Char.code '0' + max 1 (min 9 decile))

let heat_line t =
  let width = min t.n_cells heat_width in
  if width = 0 then ""
  else
    String.init width (fun i ->
        (* glyph i aggregates cells [lo, hi) — one cell per glyph until
           the grid outgrows the line *)
        let lo = i * t.n_cells / width in
        let hi = max (lo + 1) ((i + 1) * t.n_cells / width) in
        let done_ = ref 0 and fail = ref 0 in
        for c = lo to hi - 1 do
          done_ := !done_ + Atomic.get t.cell_done.(c);
          fail := !fail + Atomic.get t.cell_fail.(c)
        done;
        heat_glyph ~done_:!done_ ~fail:!fail)

let pp_eta ppf seconds =
  (* cap at 99:59:59 — beyond that the extrapolation is noise anyway *)
  if Float.is_nan seconds || seconds > 359_999.0 then Fmt.string ppf "--:--"
  else
    let s = int_of_float seconds in
    if s >= 3600 then Fmt.pf ppf "%d:%02d:%02d" (s / 3600) (s / 60 mod 60) (s mod 60)
    else Fmt.pf ppf "%d:%02d" (s / 60) (s mod 60)

let render t =
  let executed = Atomic.get t.executed in
  let skipped = Atomic.get t.skipped in
  let failures = Atomic.get t.failures in
  let done_total = executed + skipped in
  let elapsed_s = Clock.ns_to_s (Clock.now_ns () - t.started_ns) in
  let rate = Pool.trials_rate ~executed ~wall_s:elapsed_s in
  let remaining = max 0 (t.total - done_total) in
  let percent =
    if t.total = 0 then 100.0
    else 100.0 *. Float.of_int done_total /. Float.of_int t.total
  in
  let fail_rate =
    if executed = 0 then 0.0 else Float.of_int failures /. Float.of_int executed
  in
  let eta =
    if remaining = 0 then Some 0.0
    else if rate > 0.0 then Some (Float.of_int remaining /. rate)
    else None
  in
  Fmt.str "%d/%d trials (%.1f%%) | %.0f trials/s | ETA %a | fail %.2f%% (%d) | %s"
    done_total t.total percent rate
    (fun ppf -> function
      | Some s -> pp_eta ppf s
      | None -> Fmt.string ppf "--:--")
    eta (100.0 *. fail_rate) failures (heat_line t)
