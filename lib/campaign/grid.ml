module Fault_kind = Ffault_fault.Fault_kind
module Splitmix = Ffault_prng.Splitmix
module Check = Ffault_verify.Consensus_check
module Protocol = Ffault_consensus.Protocol
module Persistence = Ffault_recover.Persistence

type cell = {
  f : int;
  t : int option;
  n : int;
  kind : Fault_kind.t;
  rate : float;
  crashes : int;
  crash_rate : float;
  persistence : Persistence.mode;
}

type trial = { id : int; cell_id : int; cell : cell; index : int; seed : int64 }

(* The crash axes are the innermost loops: a spec that leaves them at
   their crash-free defaults enumerates exactly the same cells in the
   same order as before the crash dimension existed, so historical trial
   ids (and journals) stay valid. *)
let cells spec =
  let acc = ref [] in
  List.iter
    (fun f ->
      List.iter
        (fun t ->
          List.iter
            (fun n ->
              List.iter
                (fun kind ->
                  List.iter
                    (fun rate ->
                      List.iter
                        (fun crashes ->
                          List.iter
                            (fun crash_rate ->
                              List.iter
                                (fun persistence ->
                                  acc :=
                                    { f; t; n; kind; rate; crashes; crash_rate; persistence }
                                    :: !acc)
                                spec.Spec.persistence)
                            spec.Spec.crash_rates)
                        spec.Spec.crashes)
                    spec.Spec.rates)
                spec.Spec.kinds)
            spec.Spec.n_values)
        spec.Spec.t_values)
    spec.Spec.f_values;
  Array.of_list (List.rev !acc)

let n_cells spec =
  List.length spec.Spec.f_values * List.length spec.Spec.t_values
  * List.length spec.Spec.n_values * List.length spec.Spec.kinds
  * List.length spec.Spec.rates * List.length spec.Spec.crashes
  * List.length spec.Spec.crash_rates
  * List.length spec.Spec.persistence

let total_trials spec = n_cells spec * spec.Spec.trials

(* Per-trial seeds: the stateless SplitMix finalizer over (root seed,
   trial id), so any domain can derive any trial's seed without shared
   generator state, and the assignment never changes as the grid grows
   in trailing axes. The odd multiplier is the SplitMix golden-gamma. *)
let golden = 0x9E3779B97F4A7C15L

let seed_of spec id =
  Splitmix.hash (Int64.add spec.Spec.seed (Int64.mul (Int64.of_int (id + 1)) golden))

(* The crash plan's seed mixes the spec-level crash seed into the trial
   seed, so `--crash-seed` re-rolls every crash schedule while leaving
   the primitive-fault schedules (driven by the trial seed alone)
   untouched. *)
let crash_plan_seed spec trial_seed = Splitmix.hash (Int64.add trial_seed spec.Spec.crash_seed)

let cell_of_id spec cell_id = (cells spec).(cell_id)

let trial_of_cells spec cells id =
  if id < 0 || id >= Array.length cells * spec.Spec.trials then
    invalid_arg "Grid.trial: id out of range";
  let cell_id = id / spec.Spec.trials in
  { id; cell_id; cell = cells.(cell_id); index = id mod spec.Spec.trials; seed = seed_of spec id }

let trial spec id = trial_of_cells spec (cells spec) id

let setup cell protocol =
  let params = Protocol.params ?t:cell.t ~n_procs:cell.n ~f:cell.f () in
  let recover =
    if cell.crashes > 0 then
      Some { Check.crashes_per_proc = cell.crashes; persistence = cell.persistence }
    else None
  in
  (* A small payload palette so invisible/arbitrary kinds have menu
     entries in driver mode; harmless for the payload-free kinds. *)
  Check.setup ~allowed_faults:[ cell.kind ]
    ~payload_palette:[ Ffault_objects.Value.Int 424242 ]
    ?recover protocol params

let in_envelope cell protocol =
  (* Each construction's theorem is stated for one fault kind: the CAS
     constructions (Thms 4/5/6) for overriding faults, the §3.4 retry
     protocol for silent faults. A cell injecting any other kind —
     nonresponsive, arbitrary, ... — sits outside every proof, so its
     failures are expected data, never theorem violations. Likewise a
     cell with crash-restarts is only covered when the protocol declares
     a recovery section: a non-recoverable protocol's crash failures are
     the expected baseline data. *)
  let covered_kind =
    if protocol.Protocol.name = "silent-retry" then Fault_kind.Silent
    else Fault_kind.Overriding
  in
  Fault_kind.equal cell.kind covered_kind
  && (cell.crashes = 0 || Protocol.recoverable protocol)
  &&
  let params = Protocol.params ?t:cell.t ~n_procs:cell.n ~f:cell.f () in
  protocol.Protocol.in_envelope params

(* Crash-free cells keep their historical keys byte-identical, so
   `campaign diff` joins old and new journals; crash cells extend the
   key with their axes. *)
let crash_suffix c =
  if c.crashes = 0 then ""
  else
    Fmt.str ",crashes=%d,crash_rate=%.3f,persist=%s" c.crashes c.crash_rate
      (Persistence.to_string c.persistence)

let cell_key c =
  Fmt.str "f=%d,t=%s,n=%d,kind=%s,rate=%.3f%s" c.f
    (match c.t with Some t -> string_of_int t | None -> "inf")
    c.n (Fault_kind.to_string c.kind) c.rate (crash_suffix c)

let pp_cell ppf c =
  Fmt.pf ppf "f=%d t=%s n=%d %s rate=%.2f" c.f
    (match c.t with Some t -> string_of_int t | None -> "∞")
    c.n (Fault_kind.to_string c.kind) c.rate;
  if c.crashes > 0 then
    Fmt.pf ppf " crashes=%d crash_rate=%.2f persist=%a" c.crashes c.crash_rate Persistence.pp
      c.persistence
