module Fault_kind = Ffault_fault.Fault_kind
module Splitmix = Ffault_prng.Splitmix
module Check = Ffault_verify.Consensus_check
module Protocol = Ffault_consensus.Protocol

type cell = { f : int; t : int option; n : int; kind : Fault_kind.t; rate : float }

type trial = { id : int; cell_id : int; cell : cell; index : int; seed : int64 }

let cells spec =
  let acc = ref [] in
  List.iter
    (fun f ->
      List.iter
        (fun t ->
          List.iter
            (fun n ->
              List.iter
                (fun kind ->
                  List.iter
                    (fun rate -> acc := { f; t; n; kind; rate } :: !acc)
                    spec.Spec.rates)
                spec.Spec.kinds)
            spec.Spec.n_values)
        spec.Spec.t_values)
    spec.Spec.f_values;
  Array.of_list (List.rev !acc)

let n_cells spec =
  List.length spec.Spec.f_values * List.length spec.Spec.t_values
  * List.length spec.Spec.n_values * List.length spec.Spec.kinds
  * List.length spec.Spec.rates

let total_trials spec = n_cells spec * spec.Spec.trials

(* Per-trial seeds: the stateless SplitMix finalizer over (root seed,
   trial id), so any domain can derive any trial's seed without shared
   generator state, and the assignment never changes as the grid grows
   in trailing axes. The odd multiplier is the SplitMix golden-gamma. *)
let golden = 0x9E3779B97F4A7C15L

let seed_of spec id =
  Splitmix.hash (Int64.add spec.Spec.seed (Int64.mul (Int64.of_int (id + 1)) golden))

let cell_of_id spec cell_id = (cells spec).(cell_id)

let trial_of_cells spec cells id =
  if id < 0 || id >= Array.length cells * spec.Spec.trials then
    invalid_arg "Grid.trial: id out of range";
  let cell_id = id / spec.Spec.trials in
  { id; cell_id; cell = cells.(cell_id); index = id mod spec.Spec.trials; seed = seed_of spec id }

let trial spec id = trial_of_cells spec (cells spec) id

let setup cell protocol =
  let params = Protocol.params ?t:cell.t ~n_procs:cell.n ~f:cell.f () in
  (* A small payload palette so invisible/arbitrary kinds have menu
     entries in driver mode; harmless for the payload-free kinds. *)
  Check.setup ~allowed_faults:[ cell.kind ]
    ~payload_palette:[ Ffault_objects.Value.Int 424242 ]
    protocol params

let in_envelope cell protocol =
  (* Each construction's theorem is stated for one fault kind: the CAS
     constructions (Thms 4/5/6) for overriding faults, the §3.4 retry
     protocol for silent faults. A cell injecting any other kind —
     nonresponsive, arbitrary, ... — sits outside every proof, so its
     failures are expected data, never theorem violations. *)
  let covered_kind =
    if protocol.Protocol.name = "silent-retry" then Fault_kind.Silent
    else Fault_kind.Overriding
  in
  Fault_kind.equal cell.kind covered_kind
  &&
  let params = Protocol.params ?t:cell.t ~n_procs:cell.n ~f:cell.f () in
  protocol.Protocol.in_envelope params

let cell_key c =
  Fmt.str "f=%d,t=%s,n=%d,kind=%s,rate=%.3f" c.f
    (match c.t with Some t -> string_of_int t | None -> "inf")
    c.n (Fault_kind.to_string c.kind) c.rate

let pp_cell ppf c =
  Fmt.pf ppf "f=%d t=%s n=%d %s rate=%.2f" c.f
    (match c.t with Some t -> string_of_int t | None -> "∞")
    c.n (Fault_kind.to_string c.kind) c.rate
