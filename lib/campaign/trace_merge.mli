(** Merging per-process Chrome traces into one multi-process timeline.

    A distributed campaign produces span streams from several
    processes: the coordinator's own {!Ffault_telemetry.Tracer} export
    and the batches each worker piggybacked on its heartbeats. This
    module folds them into a single [trace_event] document where every
    input is its own pid row (Perfetto and [chrome://tracing] group
    tracks by pid), named by a [process_name] metadata event.

    Pure [Json] to [Json] — [ffault trace merge] does the file IO. *)

val of_tracer_events : Ffault_telemetry.Tracer.event list -> Json.t list
(** Drained {!Ffault_telemetry.Tracer} events as pid-less Chrome span
    objects ([ts] in microseconds) — the heartbeat-batch shape
    {!merge} expects. *)

val events_of_trace : Json.t -> Json.t list
(** The event array of a trace document: the ["traceEvents"] member of
    a full trace object, or the list itself when given a bare array;
    [[]] for anything else. *)

val merge : (string * Json.t list) list -> Json.t
(** [merge [(label, events); ...]] assigns pid [1, 2, ...] to each
    input in order (replacing any pid the source stamped — OS pids are
    meaningless across hosts), prepends each row's [process_name]
    metadata event (dropping any the source carried, so re-merging a
    merged trace stays cleanly labelled), and wraps everything as
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)
