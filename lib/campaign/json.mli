(** A minimal self-contained JSON encoder/parser.

    The campaign subsystem persists its artifacts (manifest, journal,
    reports) as JSON, and the container carries no JSON library — this is
    the small closed dialect we need: UTF-8 strings pass through
    untouched, integers stay exact (no float round-trip), and parsing is
    total (returns [Error] rather than raising). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (never emits raw newlines, so one value
    per line is a valid JSONL record). *)

val of_string : string -> (t, string) result
(** Parse one complete JSON value; trailing non-whitespace is an error. *)

(** Accessors: shape-checked projections, [None] on mismatch. *)

val member : string -> t -> t option
val get_int : t -> int option
val get_float : t -> float option
val get_str : t -> string option
val get_bool : t -> bool option
val get_list : t -> t list option
