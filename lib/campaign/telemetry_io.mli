(** Persisting {!Ffault_telemetry.Metrics} snapshots as campaign
    artifacts.

    A campaign run ends by dumping the process-wide metrics snapshot to
    [<dir>/telemetry.json]; {!Report.of_dir} picks it up and embeds it
    as the report's ["telemetry"] object, so step/fault/flush counters
    travel with the campaign's other artifacts. *)

val to_json : Ffault_telemetry.Metrics.snapshot -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {name:
    {"count", "sum", "buckets": [[upper_bound, count], ...]}}}]. *)

val write : dir:string -> Ffault_telemetry.Metrics.snapshot -> unit
(** Write [telemetry.json] into the campaign directory. *)

val load : dir:string -> Json.t option
(** The parsed [telemetry.json], or [None] if absent/unparsable (older
    campaigns have no snapshot; a report must still render). *)
