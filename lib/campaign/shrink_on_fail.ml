module Splitmix = Ffault_prng.Splitmix
module Check = Ffault_verify.Consensus_check
module Engine = Ffault_sim.Engine
module Shrink = Ffault_verify.Shrink
module Dfs = Ffault_verify.Dfs
module Injector = Ffault_fault.Injector
module Crash_plan = Ffault_recover.Crash_plan

(* One trial = one engine run driven by a recorded random decision
   vector. Recording follows the Dfs convention exactly — an index into
   the enabled-process / outcome-options list at every branchable point
   (more than one option), nothing at forced points — so a failing
   trial's vector replays verbatim under [Dfs.replay] and shrinks under
   [Shrink.witness] with no translation layer. Crash choices are just
   more menu indexes, so the same replay/shrink machinery covers them. *)

let index_of_crash options eff =
  let rec go i any = function
    | [] -> any
    | Engine.Crash_point e :: _ when Crash_plan.equal_crash_effect e eff -> Some i
    | Engine.Crash_point _ :: rest ->
        (* remember the first crash option as fallback: the plan's
           Linearize degrades to whatever crash the menu does offer *)
        go (i + 1) (if any = None then Some i else any) rest
    | _ :: rest -> go (i + 1) any rest
  in
  go 0 None options

let count_plain options =
  List.fold_left
    (fun acc -> function Engine.Crash_point _ -> acc | _ -> acc + 1)
    0 options

let run_recorded ?interrupt ?crash_plan setup ~rate ~seed =
  let g = Splitmix.create seed in
  let decisions = ref [] in
  let record c =
    decisions := c :: !decisions;
    c
  in
  (* Per-process operation counters: the crash plan keys its schedule on
     (proc, k) with k the process's 0-based op index, so every outcome
     choice — branchable or forced — advances the counter. *)
  let op_counts = Hashtbl.create 8 in
  let next_k proc =
    let k = Option.value (Hashtbl.find_opt op_counts proc) ~default:0 in
    Hashtbl.replace op_counts proc (k + 1);
    k
  in
  let driver =
    {
      Engine.choose_proc =
        (fun ~enabled ~step:_ ->
          match enabled with
          | [ p ] -> p
          | enabled ->
              List.nth enabled (record (Splitmix.next_int g ~bound:(List.length enabled))));
      choose_outcome =
        (fun ctx ~options ->
          let k = next_k ctx.Injector.proc in
          match options with
          | [ only ] -> only
          | options -> (
              let planned =
                match crash_plan with
                | None -> None
                | Some plan ->
                    Option.bind (Crash_plan.decide plan ~proc:ctx.Injector.proc ~k)
                      (index_of_crash options)
              in
              match planned with
              | Some c -> List.nth options (record c)
              | None ->
                  (* Head is the correct outcome; bias the fault branch by
                     the cell's rate, uniform among the primitive fault
                     options. Crash options are never taken by rate — only
                     the plan proposes crashes — and with no crash plan
                     the menu has no crash options, so this path draws the
                     same stream as before crashes existed. *)
                  let n_plain = count_plain options in
                  let c =
                    if n_plain > 1 && Splitmix.next_float g < rate then
                      1 + Splitmix.next_int g ~bound:(n_plain - 1)
                    else 0
                  in
                  List.nth options (record c)));
      after_step = (fun _ -> []);
    }
  in
  let report = Check.run_with_driver ?interrupt setup driver in
  (report, Array.of_list (List.rev !decisions))

let minimize setup decisions =
  match Shrink.witness_report setup decisions with
  | shrunk, report -> Some (shrunk, report)
  | exception _ ->
      (* A non-replaying vector would mean the recording drifted from
         the Dfs convention; never kill a campaign over a witness. *)
      None
[@@ffault.lint.allow
  "catch-all",
    "witness minimization is best-effort: a vector that fails to replay under any \
     exception means recording drifted from the Dfs convention, and the campaign \
     must journal the raw vector rather than die; nothing here holds a budget or \
     cancellation token"]

type result = {
  report : Check.report;
  decisions : int array;
  witness : int array option;
  wall_ns : int;
}

let run_trial ?(shrink = true) ?interrupt ?crash_plan setup ~rate ~seed =
  let started = Unix.gettimeofday () in
  let report, decisions = run_recorded ?interrupt ?crash_plan setup ~rate ~seed in
  (* A cancelled run must never shrink or carry a witness: its decision
     vector was truncated by wall-clock, so it neither replays
     deterministically nor witnesses anything. (Such runs also have no
     violations, so both guards below already pass them through.) *)
  let witness =
    if Check.ok report || not shrink then None
    else
      match minimize setup decisions with
      | Some (shrunk, _) -> Some shrunk
      | None -> Some decisions
  in
  let wall_ns = int_of_float ((Unix.gettimeofday () -. started) *. 1e9) in
  { report; decisions; witness; wall_ns }

let replay setup decisions = Dfs.replay setup decisions
