module Splitmix = Ffault_prng.Splitmix
module Check = Ffault_verify.Consensus_check
module Engine = Ffault_sim.Engine
module Shrink = Ffault_verify.Shrink
module Dfs = Ffault_verify.Dfs

(* One trial = one engine run driven by a recorded random decision
   vector. Recording follows the Dfs convention exactly — an index into
   the enabled-process / outcome-options list at every branchable point
   (more than one option), nothing at forced points — so a failing
   trial's vector replays verbatim under [Dfs.replay] and shrinks under
   [Shrink.witness] with no translation layer. *)

let run_recorded ?interrupt setup ~rate ~seed =
  let g = Splitmix.create seed in
  let decisions = ref [] in
  let record c =
    decisions := c :: !decisions;
    c
  in
  let driver =
    {
      Engine.choose_proc =
        (fun ~enabled ~step:_ ->
          match enabled with
          | [ p ] -> p
          | enabled ->
              List.nth enabled (record (Splitmix.next_int g ~bound:(List.length enabled))));
      choose_outcome =
        (fun _ctx ~options ->
          match options with
          | [ only ] -> only
          | options ->
              let m = List.length options in
              (* Head is the correct outcome; bias the fault branch by
                 the cell's rate, uniform among the fault options. *)
              let c =
                if Splitmix.next_float g < rate then 1 + Splitmix.next_int g ~bound:(m - 1)
                else 0
              in
              List.nth options (record c));
      after_step = (fun _ -> []);
    }
  in
  let report = Check.run_with_driver ?interrupt setup driver in
  (report, Array.of_list (List.rev !decisions))

let minimize setup decisions =
  match Shrink.witness_report setup decisions with
  | shrunk, report -> Some (shrunk, report)
  | exception _ ->
      (* A non-replaying vector would mean the recording drifted from
         the Dfs convention; never kill a campaign over a witness. *)
      None
[@@ffault.lint.allow
  "catch-all",
    "witness minimization is best-effort: a vector that fails to replay under any \
     exception means recording drifted from the Dfs convention, and the campaign \
     must journal the raw vector rather than die; nothing here holds a budget or \
     cancellation token"]

type result = {
  report : Check.report;
  decisions : int array;
  witness : int array option;
  wall_ns : int;
}

let run_trial ?(shrink = true) ?interrupt setup ~rate ~seed =
  let started = Unix.gettimeofday () in
  let report, decisions = run_recorded ?interrupt setup ~rate ~seed in
  (* A cancelled run must never shrink or carry a witness: its decision
     vector was truncated by wall-clock, so it neither replays
     deterministically nor witnesses anything. (Such runs also have no
     violations, so both guards below already pass them through.) *)
  let witness =
    if Check.ok report || not shrink then None
    else
      match minimize setup decisions with
      | Some (shrunk, _) -> Some shrunk
      | None -> Some decisions
  in
  let wall_ns = int_of_float ((Unix.gettimeofday () -. started) *. 1e9) in
  { report; decisions; witness; wall_ns }

let replay setup decisions = Dfs.replay setup decisions
