module Runner = Ffault_runtime.Runner
module Check = Ffault_verify.Consensus_check
module Engine = Ffault_sim.Engine
module Budget = Ffault_fault.Budget
module Value = Ffault_objects.Value

type summary = {
  total : int;
  executed : int;
  skipped : int;
  failures : int;
  shrunk : int;
  wall_s : float;
  trials_per_s : float;
}

let pp_summary ppf s =
  Fmt.pf ppf
    "%d/%d trials executed (%d already journaled), %d failures (%d witnesses shrunk), %.2f s \
     (%.0f trials/s)"
    s.executed s.total s.skipped s.failures s.shrunk s.wall_s s.trials_per_s

let default_max_shrinks_per_cell = 5

let record_of_result trial (res : Shrink_on_fail.result) =
  let result = res.Shrink_on_fail.report.Check.result in
  let max_steps = Array.fold_left max 0 result.Engine.steps_taken in
  let stage =
    Array.fold_left
      (fun acc v -> match Value.stage v with Some s when s > acc -> s | _ -> acc)
      (-1) result.Engine.final_states
  in
  {
    Journal.trial = trial.Grid.id;
    cell = trial.Grid.cell;
    seed = trial.Grid.seed;
    ok = Check.ok res.Shrink_on_fail.report;
    violations =
      List.map
        (Fmt.str "%a" Check.pp_violation)
        res.Shrink_on_fail.report.Check.violations;
    steps = result.Engine.total_steps;
    max_steps;
    stage;
    faults = Budget.total_faults result.Engine.budget;
    wall_us = res.Shrink_on_fail.wall_ns / 1000;
    witness = res.Shrink_on_fail.witness;
  }

let run_trials ?(domains = 1) ?(chunk = 64) ?(skip = fun _ -> false)
    ?(max_shrinks_per_cell = default_max_shrinks_per_cell) ~on_record spec =
  let protocol =
    match Spec.resolve_protocol spec.Spec.protocol with
    | Ok p -> p
    | Error m -> invalid_arg ("Pool.run_trials: " ^ m)
  in
  let cells = Grid.cells spec in
  let setups = Array.map (fun c -> Grid.setup c protocol) cells in
  (* Per-cell shrink budgets: minimizing every failure of a hopeless
     cell would dwarf the campaign itself, so only the first few
     failures per cell get the full Shrink treatment (raw decision
     vectors are journaled for the rest). *)
  let shrink_budget = Array.init (Array.length cells) (fun _ -> Atomic.make 0) in
  let shrunk = Atomic.make 0 in
  let total = Grid.total_trials spec in
  let executed = ref 0 in
  let skipped = ref 0 in
  let failures = ref 0 in
  let started = Unix.gettimeofday () in
  let worker id =
    if skip id then None
    else begin
      let trial = Grid.trial_of_cells spec cells id in
      let setup = setups.(trial.Grid.cell_id) in
      let res =
        Shrink_on_fail.run_trial ~shrink:false setup ~rate:trial.Grid.cell.Grid.rate
          ~seed:trial.Grid.seed
      in
      let res =
        if Check.ok res.Shrink_on_fail.report then res
        else if
          max_shrinks_per_cell > 0
          && Atomic.fetch_and_add shrink_budget.(trial.Grid.cell_id) 1 < max_shrinks_per_cell
        then begin
          Atomic.incr shrunk;
          (* re-run with shrinking on; the recorded run is cheap
             relative to the minimization it feeds *)
          Shrink_on_fail.run_trial ~shrink:true setup ~rate:trial.Grid.cell.Grid.rate
            ~seed:trial.Grid.seed
        end
        else { res with Shrink_on_fail.witness = Some res.Shrink_on_fail.decisions }
      in
      Some (record_of_result trial res)
    end
  in
  let consume _id = function
    | None -> incr skipped
    | Some record ->
        incr executed;
        if not record.Journal.ok then incr failures;
        on_record record
  in
  Runner.run_tasks ~chunk ~domains ~total ~worker ~consume ();
  let wall_s = Unix.gettimeofday () -. started in
  {
    total;
    executed = !executed;
    skipped = !skipped;
    failures = !failures;
    shrunk = Atomic.get shrunk;
    wall_s;
    trials_per_s = (if wall_s > 0.0 then float_of_int !executed /. wall_s else 0.0);
  }

let run_dir ?domains ?chunk ?max_shrinks_per_cell ?(resume = false) ~root spec =
  let ( let* ) = Result.bind in
  let dir = Checkpoint.campaign_dir ~root spec in
  let manifest_exists = Sys.file_exists (Checkpoint.manifest_path ~dir) in
  let* () =
    if manifest_exists && not resume then
      Error
        (Fmt.str "campaign %S already exists under %s (use resume, or pick a new name)"
           spec.Spec.name root)
    else Ok ()
  in
  let* () =
    if not manifest_exists then begin
      Checkpoint.save_manifest ~dir spec;
      Ok ()
    end
    else
      let* recorded = Checkpoint.load_manifest ~dir in
      if Spec.equal recorded spec then Ok ()
      else Error (Fmt.str "manifest under %s disagrees with the spec; refusing to resume" dir)
  in
  let total = Grid.total_trials spec in
  let st = if resume then Checkpoint.scan ~dir ~total else Checkpoint.fresh ~total in
  let writer = Journal.create_writer ~path:(Checkpoint.journal_path ~dir) in
  let finally () = Journal.close_writer writer in
  match
    run_trials ?domains ?chunk ?max_shrinks_per_cell
      ~skip:(fun id -> Checkpoint.is_done st id)
      ~on_record:(fun r -> Journal.append writer r)
      spec
  with
  | summary ->
      finally ();
      Ok summary
  | exception e ->
      finally ();
      raise e
