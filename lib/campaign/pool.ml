module Runner = Ffault_runtime.Runner
module Cancel = Ffault_runtime.Cancel
module Check = Ffault_verify.Consensus_check
module Engine = Ffault_sim.Engine
module Budget = Ffault_fault.Budget
module Value = Ffault_objects.Value
module Metrics = Ffault_telemetry.Metrics
module Tracer = Ffault_telemetry.Tracer
module Stats = Ffault_stats.Summary
module Heartbeat = Ffault_supervise.Heartbeat
module Watchdog = Ffault_supervise.Watchdog
module Retry = Ffault_supervise.Retry
module Quarantine = Ffault_supervise.Quarantine

let m_trials = Metrics.counter "campaign.trials"
let m_failures = Metrics.counter "campaign.failures"
let m_shrinks = Metrics.counter "campaign.shrinks"
let h_trial_us = Metrics.histogram "campaign.trial_us"
let m_timeouts = Metrics.counter "supervise.timeouts"
let m_retries = Metrics.counter "supervise.retries"
let m_transient = Metrics.counter "supervise.transient_infra"
let m_deterministic = Metrics.counter "supervise.deterministic_protocol"

type supervision = {
  deadline_s : float option;
  retry : Retry.policy;
  quarantine_after : int;
  adaptive_deadline : bool;
}

let default_supervision =
  {
    deadline_s = None;
    retry = Retry.default_policy;
    quarantine_after = 3;
    adaptive_deadline = false;
  }

let supervision ?deadline_s ?max_retries ?quarantine_after ?(adaptive_deadline = false) ()
    =
  (match deadline_s with
  | Some s when (not (Float.is_finite s)) || s <= 0.0 ->
      invalid_arg "Pool.supervision: deadline_s must be finite and positive"
  | _ -> ());
  (match quarantine_after with
  | Some q when q < 1 -> invalid_arg "Pool.supervision: quarantine_after < 1"
  | _ -> ());
  if adaptive_deadline && deadline_s = None then
    invalid_arg "Pool.supervision: adaptive_deadline needs a deadline to cap at";
  {
    deadline_s;
    retry = Retry.policy ?max_retries ();
    quarantine_after =
      Option.value quarantine_after ~default:default_supervision.quarantine_after;
    adaptive_deadline;
  }

(* ---- adaptive per-cell deadlines ----

   One global --deadline sized for the slowest cell makes every
   pathological trial in a fast cell wait the whole budget. With
   --adaptive-deadline, each cell's deadline is derived from its own
   observed trial durations: generous until enough samples exist, then
   a multiple of the cell's p99 — so a wedged trial in a microsecond
   cell is cut off in milliseconds, while the global deadline remains
   the upper bound (and the verdict for genuinely slow cells). *)

let adaptive_min_samples = 30
let adaptive_margin = 8.0
let adaptive_floor_s = 0.001

let adaptive_deadline_s ~p99_s ~cap_s =
  if (not (Float.is_finite p99_s)) || p99_s < 0.0 then cap_s
  else Float.min cap_s (Float.max adaptive_floor_s (adaptive_margin *. p99_s))

type summary = {
  total : int;
  executed : int;
  skipped : int;
  failures : int;
  shrunk : int;
  timeouts : int;
  retried : int;
  quarantined : int;
  wall_s : float;
  trials_per_s : float;
}

(* Tiny grids on fast machines can finish inside the wall clock's
   resolution; a naive executed/wall division then journals inf (or
   0/0 = nan). Anything under a microsecond of wall time has no
   meaningful rate — report 0 rather than a fiction. *)
let min_measurable_wall_s = 1e-6

let trials_rate ~executed ~wall_s =
  if executed <= 0 || Float.is_nan wall_s || wall_s < min_measurable_wall_s then 0.0
  else float_of_int executed /. wall_s

let pp_summary ppf s =
  let rate =
    if s.trials_per_s > 0.0 && Float.is_finite s.trials_per_s then
      Fmt.str "%.0f trials/s" s.trials_per_s
    else "rate n/a"
  in
  let health =
    if s.timeouts = 0 && s.quarantined = 0 && s.retried = 0 then ""
    else
      Fmt.str ", %d timeout(s), %d retried, %d quarantined" s.timeouts s.retried
        s.quarantined
  in
  Fmt.pf ppf
    "%d/%d trials executed (%d already journaled), %d failures (%d witnesses shrunk)%s, \
     %.2f s (%s)"
    s.executed s.total s.skipped s.failures s.shrunk health s.wall_s rate

let default_max_shrinks_per_cell = 5

let record_of_result ?(retries = 0) trial (res : Shrink_on_fail.result) =
  let result = res.Shrink_on_fail.report.Check.result in
  let max_steps = Array.fold_left max 0 result.Engine.steps_taken in
  let stage =
    Array.fold_left
      (fun acc v -> match Value.stage v with Some s when s > acc -> s | _ -> acc)
      (-1) result.Engine.final_states
  in
  let outcome =
    if result.Engine.interrupted then Journal.Timeout
    else if Check.ok res.Shrink_on_fail.report then Journal.Pass
    else Journal.Violation
  in
  {
    Journal.trial = trial.Grid.id;
    cell = trial.Grid.cell;
    seed = trial.Grid.seed;
    ok = outcome = Journal.Pass;
    outcome;
    retries;
    violations =
      List.map
        (Fmt.str "%a" Check.pp_violation)
        res.Shrink_on_fail.report.Check.violations;
    steps = result.Engine.total_steps;
    max_steps;
    stage;
    faults = Budget.total_faults result.Engine.budget;
    crash_faults = Budget.total_crashes result.Engine.budget;
    wall_us = res.Shrink_on_fail.wall_ns / 1000;
    witness = res.Shrink_on_fail.witness;
  }

(* A trial skipped because its cell was degraded. Journaled like any
   other record so the checkpoint scan marks it done: resume must not
   resurrect trials the quarantine decided to skip. *)
let quarantined_record trial =
  {
    Journal.trial = trial.Grid.id;
    cell = trial.Grid.cell;
    seed = trial.Grid.seed;
    ok = false;
    outcome = Journal.Quarantined;
    retries = 0;
    violations = [];
    steps = 0;
    max_steps = 0;
    stage = -1;
    faults = 0;
    crash_faults = 0;
    wall_us = 0;
    witness = None;
  }

let run_trials ?(domains = 1) ?(chunk = 64) ?(skip = fun _ -> false)
    ?(max_shrinks_per_cell = default_max_shrinks_per_cell)
    ?(supervision = default_supervision) ?(on_skip = fun () -> ()) ~on_record spec =
  let protocol =
    match Spec.resolve_protocol spec.Spec.protocol with
    | Ok p -> p
    | Error m -> invalid_arg ("Pool.run_trials: " ^ m)
  in
  let cells = Grid.cells spec in
  let setups = Array.map (fun c -> Grid.setup c protocol) cells in
  (* Per-cell shrink budgets: minimizing every failure of a hopeless
     cell would dwarf the campaign itself, so only the first few
     failures per cell get the full Shrink treatment (raw decision
     vectors are journaled for the rest). *)
  let shrink_budget = Array.init (Array.length cells) (fun _ -> Atomic.make 0) in
  let shrunk = Atomic.make 0 in
  let quarantine =
    Quarantine.create ~threshold:supervision.quarantine_after
      ~cells:(Array.length cells) ()
  in
  (* Heartbeats + watchdog only run on supervised (deadlined) campaigns:
     without a deadline there is no stall bound to judge against. The
     watchdog is the out-of-band backstop — the deadline normally fires
     in-band through the engine's interrupt poll; if a worker wedges
     somewhere that doesn't poll, the watchdog cancels its token. *)
  let supervised =
    match supervision.deadline_s with
    | None -> None
    | Some deadline_s ->
        let hb = Heartbeat.create ~slots:domains () in
        let stall_ns =
          max (int_of_float (4.0 *. deadline_s *. 1e9)) 500_000_000
        in
        let wd = Watchdog.create ~heartbeat:hb ~stall_ns () in
        Some (deadline_s, hb, wd)
  in
  (* Per-cell trial durations, feeding the adaptive deadline. Guarded
     by a lock: Summary is single-writer, and percentile reads race
     with adds. The lock is per-completed-attempt, far off the engine's
     hot path. *)
  let durations =
    if supervision.adaptive_deadline && supervision.deadline_s <> None then
      Some (Mutex.create (), Array.init (Array.length cells) (fun _ -> Stats.create ()))
    else None
  in
  let note_duration cell_id wall_ns =
    match durations with
    | None -> ()
    | Some (lock, stats) ->
        Mutex.lock lock;
        Stats.add stats.(cell_id) (float_of_int wall_ns /. 1e9);
        Mutex.unlock lock
  in
  let deadline_for cell_id base =
    match durations with
    | None -> base
    | Some (lock, stats) ->
        Mutex.lock lock;
        let s = stats.(cell_id) in
        let d =
          if Stats.count s < adaptive_min_samples then base
          else adaptive_deadline_s ~p99_s:(Stats.percentile s 99.0) ~cap_s:base
        in
        Mutex.unlock lock;
        d
  in
  (* Worker slots: run_tasks doesn't number its domains, so the first
     beat from each domain claims the next free slot. *)
  let slot_ids = Array.init domains (fun _ -> Atomic.make (-1)) in
  let slot_of_self () =
    let me = (Domain.self () :> int) in
    let rec find i =
      if i >= domains then 0 (* more domains than slots: share 0, still safe *)
      else if Atomic.get slot_ids.(i) = me then i
      else if Atomic.get slot_ids.(i) = -1 && Atomic.compare_and_set slot_ids.(i) (-1) me
      then i
      else find (i + 1)
    in
    find 0
  in
  let total = Grid.total_trials spec in
  let executed = ref 0 in
  let skipped = ref 0 in
  let failures = ref 0 in
  let timeouts = ref 0 in
  let retried = ref 0 in
  let quarantined = ref 0 in
  let started = Unix.gettimeofday () in
  (* A crash cell's trials run under a crash plan derived from the trial
     seed mixed with the spec's crash-seed, so --crash-seed re-rolls the
     crash schedules without touching the primitive-fault streams. *)
  let crash_plan_of trial =
    let cell = trial.Grid.cell in
    if cell.Grid.crashes > 0 && cell.Grid.crash_rate > 0.0 then
      Some
        (Ffault_recover.Crash_plan.make
           ~seed:(Grid.crash_plan_seed spec trial.Grid.seed)
           ~rate:cell.Grid.crash_rate)
    else None
  in
  let run_attempt ?interrupt trial =
    let setup = setups.(trial.Grid.cell_id) in
    let crash_plan = crash_plan_of trial in
    let res =
      Shrink_on_fail.run_trial ~shrink:false ?interrupt ?crash_plan setup
        ~rate:trial.Grid.cell.Grid.rate ~seed:trial.Grid.seed
    in
    if
      Check.ok res.Shrink_on_fail.report
      || res.Shrink_on_fail.report.Check.result.Engine.interrupted
    then res
    else if
      max_shrinks_per_cell > 0
      && Atomic.fetch_and_add shrink_budget.(trial.Grid.cell_id) 1 < max_shrinks_per_cell
    then begin
      Atomic.incr shrunk;
      Metrics.incr m_shrinks;
      (* re-run with shrinking on; the recorded run is cheap relative to
         the minimization it feeds *)
      Tracer.with_span ~cat:"campaign" "shrink" (fun () ->
          Shrink_on_fail.run_trial ~shrink:true ?interrupt ?crash_plan setup
            ~rate:trial.Grid.cell.Grid.rate ~seed:trial.Grid.seed)
    end
    else { res with Shrink_on_fail.witness = Some res.Shrink_on_fail.decisions }
  in
  (* The supervised attempt loop: run under a deadline token; a timed-out
     attempt is retried (seed unchanged — the trial is deterministic, so
     only infrastructure noise can change the verdict) after a
     seed-perturbed backoff, up to the policy's budget. Success after a
     failure classifies the failure transient-infra; exhausting the
     budget classifies the cell's behavior deterministic-protocol and
     costs the cell a quarantine strike. *)
  let run_supervised trial =
    match supervised with
    | None -> (run_attempt trial, 0)
    | Some (deadline_s, hb, wd) ->
        let slot = slot_of_self () in
        let rec attempt failed =
          Heartbeat.beat hb ~slot;
          let cancel =
            Cancel.after ~seconds:(deadline_for trial.Grid.cell_id deadline_s)
          in
          Watchdog.attach wd ~slot cancel;
          let res =
            Fun.protect
              ~finally:(fun () -> Watchdog.detach wd ~slot)
              (fun () -> run_attempt ~interrupt:(fun () -> Cancel.cancelled cancel) trial)
          in
          Heartbeat.beat hb ~slot;
          if not res.Shrink_on_fail.report.Check.result.Engine.interrupted then begin
            note_duration trial.Grid.cell_id res.Shrink_on_fail.wall_ns;
            (match Retry.classify supervision.retry ~attempts_failed:failed ~succeeded:true with
            | Some Retry.Transient_infra -> Metrics.incr m_transient
            | Some Retry.Deterministic_protocol | None -> ());
            (res, failed)
          end
          else begin
            Metrics.incr m_timeouts;
            let failed = failed + 1 in
            if failed <= supervision.retry.Retry.max_retries then begin
              Metrics.incr m_retries;
              Unix.sleepf
                (float_of_int
                   (Retry.backoff_ns supervision.retry ~seed:trial.Grid.seed
                      ~attempt:failed)
                /. 1e9);
              attempt failed
            end
            else begin
              Metrics.incr m_deterministic;
              ignore (Quarantine.strike quarantine ~cell:trial.Grid.cell_id);
              (res, failed - 1)
            end
          end
        in
        attempt 0
  in
  let worker id =
    if skip id then None
    else
      Tracer.with_span ~cat:"campaign" "trial" (fun () ->
          let trial = Grid.trial_of_cells spec cells id in
          if Quarantine.degraded quarantine ~cell:trial.Grid.cell_id then
            Some (quarantined_record trial)
          else begin
            let res, retries = run_supervised trial in
            Metrics.incr m_trials;
            Metrics.observe h_trial_us (res.Shrink_on_fail.wall_ns / 1000);
            if
              (not (Check.ok res.Shrink_on_fail.report))
              && not res.Shrink_on_fail.report.Check.result.Engine.interrupted
            then Metrics.incr m_failures;
            Some (record_of_result ~retries trial res)
          end)
  in
  let consume _id = function
    | None ->
        incr skipped;
        on_skip ()
    | Some record ->
        incr executed;
        (match record.Journal.outcome with
        | Journal.Violation -> incr failures
        | Journal.Timeout -> incr timeouts
        | Journal.Quarantined -> incr quarantined
        | Journal.Pass -> ());
        if record.Journal.retries > 0 then retried := !retried + record.Journal.retries;
        on_record record
  in
  let wd_handle =
    Option.map (fun (_, _, wd) -> Watchdog.start ~interval_s:0.05 wd) supervised
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Watchdog.stop wd_handle)
    (fun () -> Runner.run_tasks ~chunk ~domains ~total ~worker ~consume ());
  let wall_s = Unix.gettimeofday () -. started in
  {
    total;
    executed = !executed;
    skipped = !skipped;
    failures = !failures;
    shrunk = Atomic.get shrunk;
    timeouts = !timeouts;
    retried = !retried;
    quarantined = !quarantined;
    wall_s;
    trials_per_s = trials_rate ~executed:!executed ~wall_s;
  }

let run_dir ?domains ?chunk ?max_shrinks_per_cell ?supervision ?(resume = false) ?on_skip
    ?(observe = fun _ -> ()) ?(on_warn = fun _ -> ()) ~root spec =
  let ( let* ) = Result.bind in
  let* dir, st = Checkpoint.open_campaign ~resume ~on_warn ~root spec in
  let writer = Journal.create_writer ~path:(Checkpoint.journal_path ~dir) in
  let finally () = Journal.close_writer writer in
  match
    run_trials ?domains ?chunk ?max_shrinks_per_cell ?supervision ?on_skip
      ~skip:(fun id -> Checkpoint.is_done st id)
      ~on_record:(fun r ->
        Journal.append writer r;
        observe r)
      spec
  with
  | summary ->
      finally ();
      (* persist the run's metrics so `campaign report` can embed them *)
      Telemetry_io.write ~dir (Ffault_telemetry.Metrics.snapshot ());
      Ok summary
  | exception e ->
      finally ();
      raise e
