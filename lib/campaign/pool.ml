module Runner = Ffault_runtime.Runner
module Check = Ffault_verify.Consensus_check
module Engine = Ffault_sim.Engine
module Budget = Ffault_fault.Budget
module Value = Ffault_objects.Value
module Metrics = Ffault_telemetry.Metrics
module Tracer = Ffault_telemetry.Tracer

let m_trials = Metrics.counter "campaign.trials"
let m_failures = Metrics.counter "campaign.failures"
let m_shrinks = Metrics.counter "campaign.shrinks"
let h_trial_us = Metrics.histogram "campaign.trial_us"

type summary = {
  total : int;
  executed : int;
  skipped : int;
  failures : int;
  shrunk : int;
  wall_s : float;
  trials_per_s : float;
}

(* Tiny grids on fast machines can finish inside the wall clock's
   resolution; a naive executed/wall division then journals inf (or
   0/0 = nan). Anything under a microsecond of wall time has no
   meaningful rate — report 0 rather than a fiction. *)
let min_measurable_wall_s = 1e-6

let trials_rate ~executed ~wall_s =
  if executed <= 0 || Float.is_nan wall_s || wall_s < min_measurable_wall_s then 0.0
  else float_of_int executed /. wall_s

let pp_summary ppf s =
  let rate =
    if s.trials_per_s > 0.0 && Float.is_finite s.trials_per_s then
      Fmt.str "%.0f trials/s" s.trials_per_s
    else "rate n/a"
  in
  Fmt.pf ppf
    "%d/%d trials executed (%d already journaled), %d failures (%d witnesses shrunk), %.2f s \
     (%s)"
    s.executed s.total s.skipped s.failures s.shrunk s.wall_s rate

let default_max_shrinks_per_cell = 5

let record_of_result trial (res : Shrink_on_fail.result) =
  let result = res.Shrink_on_fail.report.Check.result in
  let max_steps = Array.fold_left max 0 result.Engine.steps_taken in
  let stage =
    Array.fold_left
      (fun acc v -> match Value.stage v with Some s when s > acc -> s | _ -> acc)
      (-1) result.Engine.final_states
  in
  {
    Journal.trial = trial.Grid.id;
    cell = trial.Grid.cell;
    seed = trial.Grid.seed;
    ok = Check.ok res.Shrink_on_fail.report;
    violations =
      List.map
        (Fmt.str "%a" Check.pp_violation)
        res.Shrink_on_fail.report.Check.violations;
    steps = result.Engine.total_steps;
    max_steps;
    stage;
    faults = Budget.total_faults result.Engine.budget;
    wall_us = res.Shrink_on_fail.wall_ns / 1000;
    witness = res.Shrink_on_fail.witness;
  }

let run_trials ?(domains = 1) ?(chunk = 64) ?(skip = fun _ -> false)
    ?(max_shrinks_per_cell = default_max_shrinks_per_cell) ?(on_skip = fun () -> ())
    ~on_record spec =
  let protocol =
    match Spec.resolve_protocol spec.Spec.protocol with
    | Ok p -> p
    | Error m -> invalid_arg ("Pool.run_trials: " ^ m)
  in
  let cells = Grid.cells spec in
  let setups = Array.map (fun c -> Grid.setup c protocol) cells in
  (* Per-cell shrink budgets: minimizing every failure of a hopeless
     cell would dwarf the campaign itself, so only the first few
     failures per cell get the full Shrink treatment (raw decision
     vectors are journaled for the rest). *)
  let shrink_budget = Array.init (Array.length cells) (fun _ -> Atomic.make 0) in
  let shrunk = Atomic.make 0 in
  let total = Grid.total_trials spec in
  let executed = ref 0 in
  let skipped = ref 0 in
  let failures = ref 0 in
  let started = Unix.gettimeofday () in
  let worker id =
    if skip id then None
    else
      Tracer.with_span ~cat:"campaign" "trial" (fun () ->
          let trial = Grid.trial_of_cells spec cells id in
          let setup = setups.(trial.Grid.cell_id) in
          let res =
            Shrink_on_fail.run_trial ~shrink:false setup ~rate:trial.Grid.cell.Grid.rate
              ~seed:trial.Grid.seed
          in
          let res =
            if Check.ok res.Shrink_on_fail.report then res
            else if
              max_shrinks_per_cell > 0
              && Atomic.fetch_and_add shrink_budget.(trial.Grid.cell_id) 1
                 < max_shrinks_per_cell
            then begin
              Atomic.incr shrunk;
              Metrics.incr m_shrinks;
              (* re-run with shrinking on; the recorded run is cheap
                 relative to the minimization it feeds *)
              Tracer.with_span ~cat:"campaign" "shrink" (fun () ->
                  Shrink_on_fail.run_trial ~shrink:true setup ~rate:trial.Grid.cell.Grid.rate
                    ~seed:trial.Grid.seed)
            end
            else { res with Shrink_on_fail.witness = Some res.Shrink_on_fail.decisions }
          in
          Metrics.incr m_trials;
          Metrics.observe h_trial_us (res.Shrink_on_fail.wall_ns / 1000);
          if not (Check.ok res.Shrink_on_fail.report) then Metrics.incr m_failures;
          Some (record_of_result trial res))
  in
  let consume _id = function
    | None ->
        incr skipped;
        on_skip ()
    | Some record ->
        incr executed;
        if not record.Journal.ok then incr failures;
        on_record record
  in
  Runner.run_tasks ~chunk ~domains ~total ~worker ~consume ();
  let wall_s = Unix.gettimeofday () -. started in
  {
    total;
    executed = !executed;
    skipped = !skipped;
    failures = !failures;
    shrunk = Atomic.get shrunk;
    wall_s;
    trials_per_s = trials_rate ~executed:!executed ~wall_s;
  }

let run_dir ?domains ?chunk ?max_shrinks_per_cell ?(resume = false) ?on_skip
    ?(observe = fun _ -> ()) ?(on_warn = fun _ -> ()) ~root spec =
  let ( let* ) = Result.bind in
  let dir = Checkpoint.campaign_dir ~root spec in
  let manifest_exists = Sys.file_exists (Checkpoint.manifest_path ~dir) in
  let* () =
    if manifest_exists && not resume then
      Error
        (Fmt.str "campaign %S already exists under %s (use resume, or pick a new name)"
           spec.Spec.name root)
    else Ok ()
  in
  let* () =
    if not manifest_exists then begin
      Checkpoint.save_manifest ~dir spec;
      Ok ()
    end
    else
      let* recorded = Checkpoint.load_manifest ~dir in
      if Spec.equal recorded spec then Ok ()
      else Error (Fmt.str "manifest under %s disagrees with the spec; refusing to resume" dir)
  in
  let total = Grid.total_trials spec in
  (* Repair a crash-torn journal tail before the append-mode writer
     below reopens the file, or the first new record would concatenate
     onto the torn bytes and corrupt both. *)
  if resume then begin
    let r = Journal.recover ~path:(Checkpoint.journal_path ~dir) in
    Option.iter on_warn r.Journal.warning
  end;
  let st = if resume then Checkpoint.scan ~dir ~total else Checkpoint.fresh ~total in
  let writer = Journal.create_writer ~path:(Checkpoint.journal_path ~dir) in
  let finally () = Journal.close_writer writer in
  match
    run_trials ?domains ?chunk ?max_shrinks_per_cell ?on_skip
      ~skip:(fun id -> Checkpoint.is_done st id)
      ~on_record:(fun r ->
        Journal.append writer r;
        observe r)
      spec
  with
  | summary ->
      finally ();
      (* persist the run's metrics so `campaign report` can embed them *)
      Telemetry_io.write ~dir (Ffault_telemetry.Metrics.snapshot ());
      Ok summary
  | exception e ->
      finally ();
      raise e
