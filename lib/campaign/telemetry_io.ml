module Metrics = Ffault_telemetry.Metrics

let to_json (s : Metrics.snapshot) =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.Metrics.counters));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.Metrics.gauges));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (h : Metrics.hist_view) ->
               ( h.Metrics.h_name,
                 Json.Obj
                   [
                     ("count", Json.Int h.Metrics.h_count);
                     ("sum", Json.Int h.Metrics.h_sum);
                     ( "buckets",
                       Json.List
                         (List.map
                            (fun (ub, c) -> Json.List [ Json.Int ub; Json.Int c ])
                            h.Metrics.h_buckets) );
                   ] ))
             s.Metrics.histograms) );
    ]

let write ~dir s =
  Checkpoint.write_atomic
    ~path:(Checkpoint.telemetry_path ~dir)
    (Json.to_string (to_json s) ^ "\n")

let load ~dir =
  let path = Checkpoint.telemetry_path ~dir in
  if not (Sys.file_exists path) then None
  else
    match In_channel.with_open_text path In_channel.input_all with
    | text -> (
        match Json.of_string (String.trim text) with Ok j -> Some j | Error _ -> None)
    | exception Sys_error _ -> None
