(** The campaign executor: a work-stealing domain pool over the trial
    grid.

    Trials are claimed in chunks from a shared counter
    ({!Ffault_runtime.Runner.run_tasks}), executed concurrently on
    OCaml 5 domains, and streamed — serialized — to the caller as
    {!Journal.record}s. Every record's outcome fields depend only on
    (spec, trial id), so results are identical for any [domains] value;
    only journal order — and which of a cell's failures win the
    per-cell shrink budget — varies. The exception is a {e supervised}
    run (a {!supervision} with a deadline): deadline, retry and
    quarantine decisions are wall-clock dependent by nature, and records
    they produce say so in their [outcome] field. *)

type supervision = {
  deadline_s : float option;
      (** per-trial wall-clock deadline; [None] disables supervision
          (no heartbeats, watchdog, retries or strikes) *)
  retry : Ffault_supervise.Retry.policy;
  quarantine_after : int;  (** deterministic-protocol strikes to degrade a cell *)
  adaptive_deadline : bool;
      (** derive a per-cell deadline from that cell's observed trial
          durations (a multiple of its p99, capped at [deadline_s]) once
          {!adaptive_min_samples} trials have completed — cuts tail
          latency on mixed grids where one global deadline must be sized
          for the slowest cell *)
}

val default_supervision : supervision
(** No deadline; {!Ffault_supervise.Retry.default_policy}; 3 strikes;
    no adaptive deadline. *)

val supervision :
  ?deadline_s:float ->
  ?max_retries:int ->
  ?quarantine_after:int ->
  ?adaptive_deadline:bool ->
  unit ->
  supervision
(** @raise Invalid_argument on a non-positive deadline,
    [quarantine_after < 1], or [adaptive_deadline] without a deadline
    (the adaptation needs a cap). *)

(** {2 Adaptive deadline derivation} (exposed for tests) *)

val adaptive_min_samples : int
(** 30 — completed trials a cell must show before its deadline adapts;
    below this the global deadline applies. *)

val adaptive_deadline_s : p99_s:float -> cap_s:float -> float
(** The derived deadline: [8 × p99], clamped to [\[1ms, cap_s\]]. A
    non-finite or negative p99 yields [cap_s] (never a tighter bound on
    garbage data). *)

type summary = {
  total : int;  (** grid size *)
  executed : int;  (** trials run by this call (includes quarantine skips) *)
  skipped : int;  (** trials the skip predicate excluded (resume) *)
  failures : int;  (** violating trials among [executed] *)
  shrunk : int;  (** failures that got the full Shrink treatment *)
  timeouts : int;  (** trials whose every attempt hit the deadline *)
  retried : int;  (** total retry attempts across all trials *)
  quarantined : int;  (** trials skipped because their cell degraded *)
  wall_s : float;
  trials_per_s : float;
}

val pp_summary : Format.formatter -> summary -> unit
(** Prints ["rate n/a"] instead of a number when the rate is zero or
    non-finite. *)

val trials_rate : executed:int -> wall_s:float -> float
(** [executed / wall_s], guarded: 0.0 (never [inf]/[nan]) when nothing
    executed or the wall time is below the clock's meaningful
    resolution (1 µs) — tiny grids on fast machines otherwise journal
    infinite rates. *)

val default_max_shrinks_per_cell : int
(** 5 — failures beyond this per cell journal their raw decision vector
    unminimized (shrinking every failure of a hopeless cell would cost
    more than the campaign). *)

val run_trials :
  ?domains:int ->
  ?chunk:int ->
  ?skip:(int -> bool) ->
  ?max_shrinks_per_cell:int ->
  ?supervision:supervision ->
  ?on_skip:(unit -> unit) ->
  on_record:(Journal.record -> unit) ->
  Spec.t ->
  summary
(** In-memory engine: run every trial id for which [skip id] is false
    (default none skipped) and hand each record to [on_record], which is
    called under a single lock and need not synchronize. [on_skip] is
    called (same lock) once per skipped trial — progress meters use it
    to account for resume. Defaults: 1 domain, chunk 64,
    {!default_supervision} (unsupervised).

    With a deadline set, each trial runs under a cancellation token
    polled by the engine; a timed-out attempt retries (same seed, so a
    deterministic trial reproduces; backoff seed-perturbed) up to the
    retry policy, then journals a [Timeout] record and strikes its cell;
    a cell with [quarantine_after] strikes degrades, and its remaining
    trials journal [Quarantined] records without running — which is what
    bounds a campaign over pathological cells to finitely many deadline
    waits. A watchdog thread backstops workers wedged outside the
    engine's poll points by cancelling their attached token.
    @raise Invalid_argument if the spec's protocol does not resolve or
    [domains]/[chunk] are out of range. *)

val run_dir :
  ?domains:int ->
  ?chunk:int ->
  ?max_shrinks_per_cell:int ->
  ?supervision:supervision ->
  ?resume:bool ->
  ?on_skip:(unit -> unit) ->
  ?observe:(Journal.record -> unit) ->
  ?on_warn:(string -> unit) ->
  root:string ->
  Spec.t ->
  (summary, string) result
(** Persistent campaign under [root/<spec name>/]: writes the manifest,
    appends every record to the journal (flushed per record), and — with
    [resume] (default false) — first repairs a crash-torn journal tail
    ({!Journal.recover}, reported through [on_warn], default silent),
    then replays the journal and skips every already-completed trial.
    [observe] sees each record right after its journal append
    (serialized; live progress hooks in here), [on_skip] as in
    {!run_trials}. On success also snapshots the process metrics to
    [telemetry.json] ({!Telemetry_io}). Errors: the campaign already
    exists (fresh run), or the on-disk manifest disagrees with [spec]
    (resume). *)
