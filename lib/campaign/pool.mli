(** The campaign executor: a work-stealing domain pool over the trial
    grid.

    Trials are claimed in chunks from a shared counter
    ({!Ffault_runtime.Runner.run_tasks}), executed concurrently on
    OCaml 5 domains, and streamed — serialized — to the caller as
    {!Journal.record}s. Every record's outcome fields depend only on
    (spec, trial id), so results are identical for any [domains] value;
    only journal order — and which of a cell's failures win the
    per-cell shrink budget — varies. *)

type summary = {
  total : int;  (** grid size *)
  executed : int;  (** trials run by this call *)
  skipped : int;  (** trials the skip predicate excluded (resume) *)
  failures : int;  (** violating trials among [executed] *)
  shrunk : int;  (** failures that got the full Shrink treatment *)
  wall_s : float;
  trials_per_s : float;
}

val pp_summary : Format.formatter -> summary -> unit
(** Prints ["rate n/a"] instead of a number when the rate is zero or
    non-finite. *)

val trials_rate : executed:int -> wall_s:float -> float
(** [executed / wall_s], guarded: 0.0 (never [inf]/[nan]) when nothing
    executed or the wall time is below the clock's meaningful
    resolution (1 µs) — tiny grids on fast machines otherwise journal
    infinite rates. *)

val default_max_shrinks_per_cell : int
(** 5 — failures beyond this per cell journal their raw decision vector
    unminimized (shrinking every failure of a hopeless cell would cost
    more than the campaign). *)

val run_trials :
  ?domains:int ->
  ?chunk:int ->
  ?skip:(int -> bool) ->
  ?max_shrinks_per_cell:int ->
  ?on_skip:(unit -> unit) ->
  on_record:(Journal.record -> unit) ->
  Spec.t ->
  summary
(** In-memory engine: run every trial id for which [skip id] is false
    (default none skipped) and hand each record to [on_record], which is
    called under a single lock and need not synchronize. [on_skip] is
    called (same lock) once per skipped trial — progress meters use it
    to account for resume. Defaults: 1 domain, chunk 64.
    @raise Invalid_argument if the spec's protocol does not resolve or
    [domains]/[chunk] are out of range. *)

val run_dir :
  ?domains:int ->
  ?chunk:int ->
  ?max_shrinks_per_cell:int ->
  ?resume:bool ->
  ?on_skip:(unit -> unit) ->
  ?observe:(Journal.record -> unit) ->
  ?on_warn:(string -> unit) ->
  root:string ->
  Spec.t ->
  (summary, string) result
(** Persistent campaign under [root/<spec name>/]: writes the manifest,
    appends every record to the journal (flushed per record), and — with
    [resume] (default false) — first repairs a crash-torn journal tail
    ({!Journal.recover}, reported through [on_warn], default silent),
    then replays the journal and skips every already-completed trial.
    [observe] sees each record right after its journal append
    (serialized; live progress hooks in here), [on_skip] as in
    {!run_trials}. On success also snapshots the process metrics to
    [telemetry.json] ({!Telemetry_io}). Errors: the campaign already
    exists (fresh run), or the on-disk manifest disagrees with [spec]
    (resume). *)
