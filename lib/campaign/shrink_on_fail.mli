(** Trial execution with automatic witness minimization.

    A campaign trial runs the cell's setup once under a seeded random
    driver that {e records} every branchable choice (scheduler pick,
    fault-menu pick) as a decision vector in the {!Ffault_verify.Dfs}
    convention. The trial is therefore exactly reproducible two ways:
    from its seed (re-record) and from its decision vector
    ([Dfs.replay]) — and when it violates consensus, the vector feeds
    straight into {!Ffault_verify.Shrink}, which greedily minimizes it
    while re-replaying, yielding a locally-minimal witness that is
    journaled alongside the trial. *)

val run_recorded :
  ?interrupt:(unit -> bool) ->
  ?crash_plan:Ffault_recover.Crash_plan.t ->
  Ffault_verify.Consensus_check.setup ->
  rate:float ->
  seed:int64 ->
  Ffault_verify.Consensus_check.report * int array
(** One seeded run. [rate] is the probability that a step with at least
    one budget-permitted {e primitive}-fault option takes one (uniform
    over those options); the schedule choice is uniform over enabled
    processes. [crash_plan] proposes crash-restart points per (process,
    op-index) atom — a proposed crash is taken whenever the setup's crash
    budget still offers one at that step, and crashes are {e only} taken
    by plan, never by [rate]. Equal (setup, rate, crash_plan, seed) give
    equal reports — unless [interrupt] (the engine's cancellation hook,
    see {!Ffault_sim.Engine}) fires, which truncates the run at a
    wall-clock-dependent point. *)

val minimize :
  Ffault_verify.Consensus_check.setup -> int array -> (int array * Ffault_verify.Consensus_check.report) option
(** Shrink a violating decision vector; [None] if the vector does not
    replay to a violation (which recording rules out — defensive). *)

type result = {
  report : Ffault_verify.Consensus_check.report;
  decisions : int array;  (** the recorded vector *)
  witness : int array option;  (** shrunk vector when the trial failed *)
  wall_ns : int;
}

val run_trial :
  ?shrink:bool ->
  ?interrupt:(unit -> bool) ->
  ?crash_plan:Ffault_recover.Crash_plan.t ->
  Ffault_verify.Consensus_check.setup ->
  rate:float ->
  seed:int64 ->
  result
(** Run one trial; on violation (and [shrink], default true) minimize
    the witness. An interrupted (cancelled) trial never shrinks and
    never carries a witness — its truncated decision vector is not
    deterministically replayable; check [report.result.interrupted]. *)

val replay :
  Ffault_verify.Consensus_check.setup -> int array -> Ffault_verify.Consensus_check.report
(** Re-execute a journaled witness. *)
