(** Live campaign progress: the state behind the
    [ffault campaign run --progress] status line.

    The pool's consume path feeds it ({!on_record}/{!on_skip}); a
    {!Ffault_telemetry.Progress} reporter thread reads it concurrently
    through {!render}. All counters are atomics, so the renderer needs
    no lock and the writers stay on the journal's serialized path.

    The rendered line packs: completed/total trials and percentage,
    live trials/s, an ETA extrapolated from the grid size, the running
    failure rate, and a per-cell heat line (one glyph per grid cell —
    ['.'] clean, ['1'..'9'] failure-rate deciles, ['?'] untouched;
    grids wider than {!heat_width} aggregate adjacent cells). *)

type t

val create : Spec.t -> t
(** Starts the wall clock. *)

val on_record : t -> Journal.record -> unit
val on_skip : t -> unit
(** A trial the resume mask excluded (counts toward grid completion but
    not toward the trials/s rate). *)

val executed : t -> int
val failures : t -> int

val heat_width : int
(** 48 glyphs. *)

val heat_line : t -> string
val render : t -> string
(** One line, no ['\n'], no ANSI escapes (the reporter adds those only
    on TTYs). *)
