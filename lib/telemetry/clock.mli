(** Monotonic time.

    [clock_gettime(CLOCK_MONOTONIC)] behind a [@@noalloc] external:
    immune to wall-clock steps (NTP, suspend) and allocation-free, so
    spans and rate meters can stamp events from the hottest loops. *)

val now_ns : unit -> int
(** Nanoseconds since an arbitrary (per-boot) epoch. Monotonic,
    non-decreasing across domains. *)

val now_us : unit -> float
(** {!now_ns} as fractional microseconds — the unit of the Chrome
    [trace_event] format. *)

val ns_to_s : int -> float
(** Convenience: a nanosecond interval as seconds. *)
