type t = {
  oc : out_channel;
  ansi : bool;
  render : unit -> string;
  stop_flag : bool Atomic.t;
  thread : Thread.t option;
  mutable stopped : bool;
}

let isatty oc =
  match Unix.isatty (Unix.descr_of_out_channel oc) with
  | b -> b
  | exception Unix.Unix_error _ -> false
  | exception Sys_error _ -> false

let default_interval = 0.5

(* One line only: a render with embedded newlines would break the
   redraw-in-place contract. *)
let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let draw t =
  output_string t.oc ("\r\027[2K" ^ one_line (t.render ()));
  flush t.oc

let start ?(interval = default_interval) ?ansi ?(oc = stderr) ~render () =
  let ansi = match ansi with Some b -> b | None -> isatty oc in
  let stop_flag = Atomic.make false in
  let t = { oc; ansi; render; stop_flag; thread = None; stopped = false } in
  let thread =
    if not ansi then None
    else
      Some
        (Thread.create
           (fun () ->
             while not (Atomic.get stop_flag) do
               draw t;
               (* sleep in short slices so stop doesn't wait a full
                  interval *)
               let slept = ref 0.0 in
               while (not (Atomic.get stop_flag)) && !slept < interval do
                 Thread.delay 0.05;
                 slept := !slept +. 0.05
               done
             done)
           ())
  in
  { t with thread }

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stop_flag true;
    Option.iter Thread.join t.thread;
    if t.ansi then output_string t.oc "\r\027[2K";
    output_string t.oc (one_line (t.render ()));
    output_char t.oc '\n';
    flush t.oc
  end
