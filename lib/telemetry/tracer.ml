type event = {
  ph : char;  (* 'B' | 'E' | 'i' *)
  name : string;
  cat : string;
  ts_ns : int;
  tid : int;  (* domain id *)
}

(* One ring per domain shard. Recording under the ring's mutex keeps
   every stored event internally consistent (no torn name/ts pairs when
   domain ids collide on a shard); the mutex is per-ring, so domains
   only ever contend on hash collisions. *)
type ring = {
  lock : Mutex.t;
  mutable events : event array;  (* length = capacity; [dummy] when empty *)
  mutable head : int;  (* next write position *)
  mutable filled : bool;  (* head has wrapped at least once *)
  mutable dropped : int;
}

let dummy = { ph = 'i'; name = ""; cat = ""; ts_ns = 0; tid = -1 }
let n_rings = Metrics.n_shards
let default_capacity = 65_536

let rings =
  Array.init n_rings (fun _ ->
      { lock = Mutex.create (); events = [||]; head = 0; filled = false; dropped = 0 })

let on = Atomic.make false
let enabled () = Atomic.get on

let enable ?(capacity = default_capacity) () =
  if capacity < 2 then invalid_arg "Tracer.enable: capacity < 2";
  Array.iter
    (fun r ->
      Mutex.lock r.lock;
      r.events <- Array.make capacity dummy;
      r.head <- 0;
      r.filled <- false;
      r.dropped <- 0;
      Mutex.unlock r.lock)
    rings;
  Atomic.set on true

let disable () = Atomic.set on false

let record ph cat name =
  if Atomic.get on then begin
    let tid = (Domain.self () :> int) in
    let r = rings.(tid land (n_rings - 1)) in
    let ev = { ph; name; cat; ts_ns = Clock.now_ns (); tid } in
    Mutex.lock r.lock;
    if Array.length r.events > 0 then begin
      if r.filled then r.dropped <- r.dropped + 1;
      r.events.(r.head) <- ev;
      r.head <- r.head + 1;
      if r.head = Array.length r.events then begin
        r.head <- 0;
        r.filled <- true
      end
    end;
    Mutex.unlock r.lock
  end

let begin_span ?(cat = "") name = record 'B' cat name
let end_span ?(cat = "") name = record 'E' cat name
let instant ?(cat = "") name = record 'i' cat name

let with_span ?cat name f =
  if Atomic.get on then begin
    begin_span ?cat name;
    Fun.protect ~finally:(fun () -> end_span ?cat name) f
  end
  else f ()

let collect () =
  let acc = ref [] in
  Array.iter
    (fun r ->
      Mutex.lock r.lock;
      let n = Array.length r.events in
      if n > 0 then begin
        let len = if r.filled then n else r.head in
        let start = if r.filled then r.head else 0 in
        for k = 0 to len - 1 do
          acc := r.events.((start + k) mod n) :: !acc
        done
      end;
      Mutex.unlock r.lock)
    rings;
  List.stable_sort (fun a b -> compare a.ts_ns b.ts_ns) !acc

(* Collect-and-reset: the piggyback path (a worker shipping span
   batches on its heartbeat frames) wants each event exactly once, so
   draining empties every ring while keeping the cumulative drop
   count. *)
let drain () =
  let acc = ref [] in
  Array.iter
    (fun r ->
      Mutex.lock r.lock;
      let n = Array.length r.events in
      if n > 0 then begin
        let len = if r.filled then n else r.head in
        let start = if r.filled then r.head else 0 in
        for k = 0 to len - 1 do
          acc := r.events.((start + k) mod n) :: !acc
        done;
        r.head <- 0;
        r.filled <- false
      end;
      Mutex.unlock r.lock)
    rings;
  List.stable_sort (fun a b -> compare a.ts_ns b.ts_ns) !acc

(* Ring overwrite can orphan events: an 'E' whose 'B' was overwritten,
   or a 'B' whose 'E' is still pending at export time. Chrome refuses
   (or misrenders) unbalanced tracks, so repair per tid: drop orphan
   'E's, close dangling 'B's at the trace's final timestamp. *)
let balance events =
  let max_ts = List.fold_left (fun m e -> max m e.ts_ns) 0 events in
  let stacks : (int, event list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks tid s;
        s
  in
  let out = ref [] in
  List.iter
    (fun e ->
      match e.ph with
      | 'B' ->
          let s = stack e.tid in
          s := e :: !s;
          out := e :: !out
      | 'E' -> (
          let s = stack e.tid in
          match !s with
          | [] -> () (* orphan: its B was overwritten *)
          | _ :: rest ->
              s := rest;
              out := e :: !out)
      | _ -> out := e :: !out)
    events;
  let closers = ref [] in
  Hashtbl.iter
    (fun _ s ->
      List.iter
        (fun b -> closers := { b with ph = 'E'; ts_ns = max_ts } :: !closers)
        !s)
    stacks;
  (* closers go after the body; stable sort keeps them there on ties *)
  List.stable_sort
    (fun a b -> compare a.ts_ns b.ts_ns)
    (List.rev !out @ List.rev !closers)

let escape name =
  (* metric/span names are identifiers, but never trust a string into
     JSON unescaped *)
  let b = Buffer.create (String.length name + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    name;
  Buffer.contents b

let export () =
  let events = balance (collect ()) in
  let pid = Unix.getpid () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Fmt.str "{\"ph\":\"%c\",\"name\":\"%s\",\"cat\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f%s}"
           e.ph (escape e.name)
           (escape (if e.cat = "" then "ffault" else e.cat))
           pid e.tid
           (float_of_int e.ts_ns /. 1e3)
           (if e.ph = 'i' then ",\"s\":\"t\"" else "")))
    events;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let export_to_file path =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (export ());
      output_char oc '\n')

let event_count () =
  Array.fold_left
    (fun acc r ->
      Mutex.lock r.lock;
      let n = if r.filled then Array.length r.events else r.head in
      Mutex.unlock r.lock;
      acc + n)
    0 rings

let dropped_count () =
  Array.fold_left
    (fun acc r ->
      Mutex.lock r.lock;
      let d = r.dropped in
      Mutex.unlock r.lock;
      acc + d)
    0 rings
