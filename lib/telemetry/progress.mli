(** Live progress reporting on an interval thread.

    A reporter redraws one status line (produced by the caller's
    [render] closure) every [interval] seconds. On a TTY the line is
    redrawn in place with carriage-return + erase; on anything else
    (logs, CI) nothing is printed until {!stop}, which always emits one
    final plain-text summary line — and in non-ANSI mode the output
    contains no escape codes at all.

    [render] is called from the reporter thread while the workload runs
    on other domains: it must read only thread-safe state (atomics) and
    must return a single line (no ['\n']). *)

type t

val isatty : out_channel -> bool
(** Whether the channel is a terminal ([Unix.isatty]; false if the
    descriptor cannot be inspected). *)

val default_interval : float
(** 0.5 s. *)

val start :
  ?interval:float -> ?ansi:bool -> ?oc:out_channel -> render:(unit -> string) -> unit -> t
(** Spawn the reporter. [ansi] defaults to [isatty oc]; [oc] defaults
    to [stderr]. With [ansi = false] the thread stays silent and only
    {!stop}'s final line is printed. *)

val stop : t -> unit
(** Join the thread, erase the live line (ANSI mode) and print the
    final render plus a newline. Idempotent. *)
