(** Runtime metrics: sharded, allocation-free counters, gauges and
    histograms.

    Every metric owns one cache-padded slot per domain shard (domain id
    mod {!n_shards}); the hot paths touch only their own shard with a
    single [Atomic.fetch_and_add], so the simulator can count every
    engine step with near-zero cross-domain contention. Readers merge
    the shards on {!snapshot}, which is the only place totals exist.

    Metrics are process-global and registered by name at creation
    (creation is rare and locked; re-creating a name returns the
    existing metric, so modules can declare their instruments at
    top-level without coordination). Recording never allocates and
    never takes a lock. *)

val n_shards : int
(** Number of per-metric slots (a power of two). Concurrent domains
    whose ids collide modulo [n_shards] share a slot — still correct,
    merely contended. *)

(** {2 Counters} *)

type counter

val counter : string -> counter
(** Find-or-create the named counter. *)

val incr : counter -> unit
val add : counter -> int -> unit

(** {2 Gauges}

    Last-write-wins integer levels (queue depths, in-flight domains). *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> int -> unit
val add_gauge : gauge -> int -> unit

(** {2 Histograms}

    Power-of-two buckets over non-negative integer samples: bucket 0
    holds values [<= 0], bucket [i >= 1] holds [2^(i-1) .. 2^i - 1].
    Count and sum are exact; the bucket vector gives the shape. *)

type histogram

val histogram : string -> histogram
val observe : histogram -> int -> unit

val bucket_of : int -> int
(** The bucket index a value lands in (exposed for tests). *)

val bucket_upper_bound : int -> int
(** Largest value bucket [i] admits ([0] for bucket 0, [2^i - 1]
    otherwise, [max_int] for the last bucket). *)

(** {2 Snapshots} *)

type hist_view = {
  h_name : string;
  h_count : int;
  h_sum : int;
  h_buckets : (int * int) list;
      (** (upper bound, count) for each non-empty bucket, ascending *)
}

type snapshot = {
  counters : (string * int) list;  (** name-sorted, merged over shards *)
  gauges : (string * int) list;
  histograms : hist_view list;
}

val snapshot : unit -> snapshot
(** Merge every registered metric. Concurrent recording during a
    snapshot may or may not be included (each shard is read atomically;
    the merge is not a global atomic cut). *)

val find_counter : snapshot -> string -> int option
val find_histogram : snapshot -> string -> hist_view option

val reset : unit -> unit
(** Zero every registered metric (benches and tests; racy against
    concurrent writers by design). *)

val pp_snapshot : Format.formatter -> snapshot -> unit
(** Human-readable dump, one metric per line. *)

val expose : ?snapshot:snapshot -> unit -> string
(** Prometheus text exposition of a snapshot (taken now if not given):
    every metric renamed to [ffault_<name>] with non-identifier
    characters mangled to ['_'], counters and gauges as single samples,
    histograms as cumulative [_bucket{le="..."}] series plus [_sum] and
    [_count]. Deterministic for a given snapshot (names are sorted),
    which is what the golden test and the [/metrics] endpoint rely
    on. *)
