/* Monotonic clock for the telemetry layer.
 *
 * Returns nanoseconds since an arbitrary epoch as a tagged OCaml int
 * (no allocation, so the external can be [@@noalloc] and is safe to
 * call from the simulator's hot loop). 63-bit ints hold ~292 years of
 * nanoseconds, so the tag bit costs nothing. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value ffault_monotonic_ns(value unit)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  (void)unit;
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
