(** A structured event log: ring-buffered, severity-tagged, monotonic
    timestamps, optional key/value fields, JSONL rendering.

    Where {!Metrics} counts and {!Tracer} times, [Events] narrates:
    worker joins, lease churn, watchdog verdicts — the discrete
    lifecycle facts an operator greps for. Each log is an instance (the
    coordinator owns one per campaign) with an injectable clock, so the
    netsim driver can feed one under virtual time and the resulting
    [/events] JSON is a pure function of the schedule.

    Under pressure the ring overwrites its oldest entry and counts the
    loss ({!dropped}) — emitting never blocks and never allocates
    beyond the event itself. An optional sink receives each event as a
    JSONL line at emit time (the coordinator streams [events.jsonl]
    into the campaign directory through it). *)

type severity = Debug | Info | Warn | Error

val severity_to_string : severity -> string
(** ["debug"] / ["info"] / ["warn"] / ["error"]. *)

val severity_of_string : string -> severity option

type event = {
  seq : int;  (** 0-based emission index, never reused *)
  ts_ns : int;  (** monotonic stamp from the log's clock *)
  severity : severity;
  scope : string;  (** subsystem, e.g. ["dist"] *)
  message : string;
  fields : (string * string) list;
}

type t

val default_capacity : int
(** 1024 events. *)

val create : ?capacity:int -> ?now:(unit -> int) -> unit -> t
(** A fresh log. [now] defaults to the process monotonic clock
    ({!Clock.now_ns}); inject a virtual source for determinism.
    @raise Invalid_argument if [capacity < 2]. *)

val emit :
  t -> ?severity:severity -> ?fields:(string * string) list -> scope:string -> string -> unit
(** Record one event (default severity [Info]). If the ring is full the
    oldest event is overwritten and counted in {!dropped}. *)

val set_sink : t -> (string -> unit) option -> unit
(** Attach (or detach) a line consumer: every subsequent {!emit} also
    renders the event with {!json_line} and passes it on. The sink runs
    outside the log's lock, in the emitting thread. *)

val tail : ?limit:int -> t -> event list
(** The buffered events oldest-first; with [limit], only the newest
    [limit] of them. *)

val json_line : event -> string
(** One JSONL object:
    [{"seq":..,"ts_ns":..,"severity":"..","scope":"..","msg":"..","fields":{..}}]
    ([fields] omitted when empty). *)

val emitted : t -> int
(** Total events ever emitted (the next event's [seq]). *)

val buffered : t -> int
(** Events currently held (≤ capacity). *)

val dropped : t -> int
(** Events lost to ring overwrite since creation/{!clear}. *)

val clear : t -> unit
(** Empty the ring and reset [seq] and the drop count. *)
