(** Span tracing in the Chrome [trace_event] format.

    Begin/end/instant events are stamped with the monotonic clock and
    written into per-domain ring buffers (oldest events overwritten when
    a ring fills), then exported as a JSON object whose [traceEvents]
    array loads directly in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto} — so a whole campaign (pool
    chunks, trials, shrinks, journal writes) can be inspected on a
    timeline.

    The tracer is disabled by default and every recording call starts
    with one atomic load — a disabled tracer is a no-op, which is the
    performance contract that lets the runtime and campaign layers stay
    instrumented unconditionally. Enabled recording takes a per-ring
    mutex (rings are sharded by domain id, so it is almost always
    uncontended). *)

val default_capacity : int
(** 65 536 events per domain ring. *)

val enable : ?capacity:int -> unit -> unit
(** Clear all rings and start recording.
    @raise Invalid_argument if [capacity < 2]. *)

val disable : unit -> unit
(** Stop recording; already-buffered events survive until the next
    {!enable} and can still be {!export}ed. *)

val enabled : unit -> bool

(** {2 Recording} *)

val begin_span : ?cat:string -> string -> unit
val end_span : ?cat:string -> string -> unit
(** Durations nest per domain: Chrome matches each ["E"] with the most
    recent unmatched ["B"] on the same thread track. *)

val instant : ?cat:string -> string -> unit

val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [begin_span]/[end_span] around the thunk (end emitted on exceptions
    too). *)

(** {2 Export} *)

(** One buffered event, exposed for cross-process aggregation: a worker
    drains its rings and ships batches to the coordinator, which merges
    them into one Chrome trace with a pid row per worker. *)
type event = {
  ph : char;  (** ['B'] | ['E'] | ['i'] *)
  name : string;
  cat : string;
  ts_ns : int;
  tid : int;  (** domain id *)
}

val drain : unit -> event list
(** Remove and return every buffered event, oldest first. Unlike
    {!export} this empties the rings (the drop count is kept), so
    repeated drains see each event exactly once. *)

val export : unit -> string
(** The buffered events as a Chrome trace JSON object
    [{"traceEvents": [...], "displayTimeUnit": "ms"}], events sorted by
    timestamp. The export is repaired to keep B/E balanced per track
    even when a ring overwrote events: orphaned ["E"]s are dropped and
    unclosed ["B"]s get a synthetic ["E"] at the latest timestamp. *)

val export_to_file : string -> unit
(** {!export} into a file (created/truncated). *)

val event_count : unit -> int
(** Events currently buffered (post-overwrite). *)

val dropped_count : unit -> int
(** Events lost to ring overwrites since {!enable}. *)
