(* Sharding: domain id modulo a fixed power-of-two slot count. Domain
   ids grow monotonically over the process lifetime, so two live domains
   can collide on a slot — the slots are atomics, so collisions cost
   contention, never correctness. *)

[@@@ffault.lint.allow
  "obj-magic",
    "padded_atomic re-allocates an int Atomic.t with a cache line of trailing words \
     (the multicore-magic padding technique); the copy preserves tag and fields, and \
     the extra words are never scanned as the block keeps its abstract tag"]

let n_shards = 64
let shard () = (Domain.self () :> int) land (n_shards - 1)

(* One cache line of padding around each slot: an [int Atomic.t] is a
   one-word block, and freshly allocated slots would otherwise sit
   adjacent on the minor heap and keep false-sharing each other after
   promotion. [padded_atomic] re-allocates the block with a cache line
   of trailing words (the multicore-magic technique); the copy keeps
   its size across GCs. *)
let cache_line_words = 8

let padded_atomic (v : int) : int Atomic.t =
  let a = Obj.repr (Atomic.make v) in
  let n = Obj.size a in
  let b = Obj.new_block (Obj.tag a) (n + cache_line_words) in
  for i = 0 to n - 1 do
    Obj.set_field b i (Obj.field a i)
  done;
  (Obj.magic b : int Atomic.t)

let make_slots () = Array.init n_shards (fun _ -> padded_atomic 0)
let merge_slots slots = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 slots
let zero_slots slots = Array.iter (fun a -> Atomic.set a 0) slots

(* ---- counters ---- *)

type counter = { c_name : string; c_slots : int Atomic.t array }

(* [shard ()] is masked to [0 .. n_shards-1] and every slot array has
   exactly [n_shards] entries, so the bounds check is redundant. *)
let[@inline] add c n = ignore (Atomic.fetch_and_add (Array.unsafe_get c.c_slots (shard ())) n)
let[@inline] incr c = add c 1

(* ---- gauges ---- *)

(* A gauge is a level, not a flow: [set] must win over stale shard
   contents, so it lives in a single padded atomic (sets are rare). *)
type gauge = { g_name : string; g_cell : int Atomic.t }

let set_gauge g v = Atomic.set g.g_cell v
let add_gauge g n = ignore (Atomic.fetch_and_add g.g_cell n)

(* ---- histograms ---- *)

let n_buckets = 63

let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and v = ref v in
    while !v > 0 do
      i := !i + 1;
      v := !v lsr 1
    done;
    min !i (n_buckets - 1)
  end

let bucket_upper_bound i =
  if i <= 0 then 0 else if i >= n_buckets - 1 then max_int else (1 lsl i) - 1

type hist_shard = {
  hs_buckets : int Atomic.t array;
  hs_count : int Atomic.t;
  hs_sum : int Atomic.t;
}

type histogram = { h_name : string; h_shards : hist_shard array }

let observe h v =
  let s = h.h_shards.(shard ()) in
  ignore (Atomic.fetch_and_add s.hs_buckets.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add s.hs_count 1);
  ignore (Atomic.fetch_and_add s.hs_sum v)

(* ---- registry ---- *)

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let register name build project =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> project m
      | None ->
          let m = build () in
          Hashtbl.add registry name m;
          project m)

let counter name =
  register name
    (fun () -> C { c_name = name; c_slots = make_slots () })
    (function
      | C c -> c
      | G _ | H _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter"))

let gauge name =
  register name
    (fun () -> G { g_name = name; g_cell = padded_atomic 0 })
    (function
      | G g -> g
      | C _ | H _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge"))

let histogram name =
  register name
    (fun () ->
      H
        {
          h_name = name;
          h_shards =
            Array.init n_shards (fun _ ->
                {
                  hs_buckets = Array.init n_buckets (fun _ -> padded_atomic 0);
                  hs_count = padded_atomic 0;
                  hs_sum = padded_atomic 0;
                });
        })
    (function
      | H h -> h
      | C _ | G _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram"))

(* ---- snapshots ---- *)

type hist_view = {
  h_name : string;
  h_count : int;
  h_sum : int;
  h_buckets : (int * int) list;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : hist_view list;
}

let view_histogram (h : histogram) =
  let buckets = Array.make n_buckets 0 in
  let count = ref 0 and sum = ref 0 in
  Array.iter
    (fun s ->
      Array.iteri (fun i a -> buckets.(i) <- buckets.(i) + Atomic.get a) s.hs_buckets;
      count := !count + Atomic.get s.hs_count;
      sum := !sum + Atomic.get s.hs_sum)
    h.h_shards;
  let bs = ref [] in
  for i = n_buckets - 1 downto 0 do
    if buckets.(i) > 0 then bs := (bucket_upper_bound i, buckets.(i)) :: !bs
  done;
  { h_name = h.h_name; h_count = !count; h_sum = !sum; h_buckets = !bs }

let snapshot () =
  Mutex.lock registry_lock;
  let metrics =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock registry_lock)
      (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry [])
  in
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  List.iter
    (function
      | C c -> counters := (c.c_name, merge_slots c.c_slots) :: !counters
      | G g -> gauges := (g.g_name, Atomic.get g.g_cell) :: !gauges
      | H h -> hists := view_histogram h :: !hists)
    metrics;
  let by_name (a, _) (b, _) = String.compare a b in
  {
    counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    histograms = List.sort (fun a b -> String.compare a.h_name b.h_name) !hists;
  }

let find_counter s name = List.assoc_opt name s.counters

let find_histogram s name = List.find_opt (fun h -> h.h_name = name) s.histograms

let reset () =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | C c -> zero_slots c.c_slots
          | G g -> Atomic.set g.g_cell 0
          | H h ->
              Array.iter
                (fun s ->
                  zero_slots s.hs_buckets;
                  Atomic.set s.hs_count 0;
                  Atomic.set s.hs_sum 0)
                h.h_shards)
        registry)

(* ---- Prometheus-style text exposition ---- *)

(* Metric names here are dotted ("dist.leases_granted"); the exposition
   format allows only [a-zA-Z0-9_:], so everything else becomes '_' and
   the whole name gets an "ffault_" namespace prefix. *)
let expose_name name =
  "ffault_"
  ^ String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      name

let expose ?snapshot:snap () =
  let s = match snap with Some s -> s | None -> snapshot () in
  let b = Buffer.create 1024 in
  let scalar kind (name, v) =
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" (expose_name name) kind);
    Buffer.add_string b (Printf.sprintf "%s %d\n" (expose_name name) v)
  in
  List.iter (scalar "counter") s.counters;
  List.iter (scalar "gauge") s.gauges;
  List.iter
    (fun h ->
      let n = expose_name h.h_name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
      (* h_buckets holds per-bucket counts for the non-empty buckets,
         ascending; Prometheus buckets are cumulative with an explicit
         +Inf equal to the total count. *)
      let cum = ref 0 in
      List.iter
        (fun (ub, c) ->
          cum := !cum + c;
          if ub < max_int then
            Buffer.add_string b (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n ub !cum))
        h.h_buckets;
      Buffer.add_string b (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n h.h_count);
      Buffer.add_string b (Printf.sprintf "%s_sum %d\n" n h.h_sum);
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n h.h_count))
    s.histograms;
  Buffer.contents b

let pp_snapshot ppf s =
  List.iter (fun (n, v) -> Fmt.pf ppf "%s = %d@." n v) s.counters;
  List.iter (fun (n, v) -> Fmt.pf ppf "%s ~ %d@." n v) s.gauges;
  List.iter
    (fun h ->
      Fmt.pf ppf "%s : count=%d sum=%d mean=%.1f@." h.h_name h.h_count h.h_sum
        (if h.h_count = 0 then 0.0 else float_of_int h.h_sum /. float_of_int h.h_count))
    s.histograms
