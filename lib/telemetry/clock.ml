external now_ns : unit -> int = "ffault_monotonic_ns" [@@noalloc]

let now_us () = float_of_int (now_ns ()) /. 1e3
let ns_to_s ns = float_of_int ns /. 1e9
