(* A structured event log: one process-wide ring per instance, newest
   events overwriting the oldest under pressure (counted, never
   blocking). The shape mirrors Tracer's rings — a mutex-guarded array
   with a wrap flag — but events are rare (joins, lease churn,
   lifecycle), so one ring per log is enough and the lock is cold. *)

type severity = Debug | Info | Warn | Error

let severity_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let severity_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type event = {
  seq : int;
  ts_ns : int;
  severity : severity;
  scope : string;
  message : string;
  fields : (string * string) list;
}

type t = {
  lock : Mutex.t;
  now : unit -> int;
  events : event array;  (* length = capacity *)
  mutable head : int;  (* next write position *)
  mutable filled : bool;  (* head has wrapped at least once *)
  mutable seq : int;  (* total events ever emitted *)
  mutable dropped : int;  (* overwritten before anyone read them *)
  mutable sink : (string -> unit) option;
}

let dummy =
  { seq = -1; ts_ns = 0; severity = Debug; scope = ""; message = ""; fields = [] }

let default_capacity = 1024

let create ?(capacity = default_capacity) ?(now = Clock.now_ns) () =
  if capacity < 2 then invalid_arg "Events.create: capacity < 2";
  {
    lock = Mutex.create ();
    now;
    events = Array.make capacity dummy;
    head = 0;
    filled = false;
    seq = 0;
    dropped = 0;
    sink = None;
  }

(* ---- JSONL rendering ---- *)

(* Quotes, backslashes and control characters — exactly the JSON
   string escapes the hand-rolled campaign parser understands. *)
let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_line (e : event) =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "{\"seq\":%d,\"ts_ns\":%d,\"severity\":\"%s\",\"scope\":\"%s\",\"msg\":\"%s\""
       e.seq e.ts_ns (severity_to_string e.severity) (escape e.scope)
       (escape e.message));
  if e.fields <> [] then begin
    Buffer.add_string b ",\"fields\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
      e.fields;
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}';
  Buffer.contents b

(* ---- recording ---- *)

let set_sink t sink =
  Mutex.lock t.lock;
  t.sink <- sink;
  Mutex.unlock t.lock

let emit t ?(severity = Info) ?(fields = []) ~scope message =
  let ts_ns = t.now () in
  Mutex.lock t.lock;
  let e = { seq = t.seq; ts_ns; severity; scope; message; fields } in
  t.seq <- t.seq + 1;
  if t.filled then t.dropped <- t.dropped + 1;
  t.events.(t.head) <- e;
  t.head <- t.head + 1;
  if t.head = Array.length t.events then begin
    t.head <- 0;
    t.filled <- true
  end;
  let sink = t.sink in
  Mutex.unlock t.lock;
  (* the sink runs outside the lock: it may do file IO *)
  match sink with Some f -> f (json_line e) | None -> ()

(* ---- reading ---- *)

let tail ?limit t =
  Mutex.lock t.lock;
  let n = Array.length t.events in
  let len = if t.filled then n else t.head in
  let start = if t.filled then t.head else 0 in
  let kept = match limit with Some l when l < len -> max 0 l | _ -> len in
  let out = ref [] in
  for k = len - 1 downto len - kept do
    out := t.events.((start + k) mod n) :: !out
  done;
  Mutex.unlock t.lock;
  !out

let emitted t =
  Mutex.lock t.lock;
  let v = t.seq in
  Mutex.unlock t.lock;
  v

let buffered t =
  Mutex.lock t.lock;
  let v = if t.filled then Array.length t.events else t.head in
  Mutex.unlock t.lock;
  v

let dropped t =
  Mutex.lock t.lock;
  let v = t.dropped in
  Mutex.unlock t.lock;
  v

let clear t =
  Mutex.lock t.lock;
  Array.fill t.events 0 (Array.length t.events) dummy;
  t.head <- 0;
  t.filled <- false;
  t.seq <- 0;
  t.dropped <- 0;
  Mutex.unlock t.lock
