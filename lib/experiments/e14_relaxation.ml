open Common
module Table = Ffault_stats.Table
module Engine = Ffault_sim.Engine
module World = Ffault_sim.World
module Scheduler = Ffault_sim.Scheduler
module Proc = Ffault_sim.Proc
module Trace = Ffault_sim.Trace
module Budget = Fault.Budget
module Fault_kind = Fault.Fault_kind
module Injector = Fault.Injector
module Queue_spec = Ffault_hoare.Queue_spec
module Triple = Ffault_hoare.Triple
open Ffault_objects

type run_stats = {
  conserved : bool;  (** dequeued multiset = enqueued multiset *)
  max_distance : int;  (** deepest relaxed removal observed *)
  relaxed_steps : int;
  audit_mismatches : int;
  all_decided : bool;
}

(* n producers/consumers over one shared queue: each enqueues its m items,
   then dequeues m items (retrying on empty). *)
let run_workload ~n ~items ~k ~p ~seed =
  let world = World.make ~n_procs:n [ World.obj ~label:"Q" Kind.Queue ] in
  let q = Obj_id.of_int 0 in
  let got = Array.make n [] in
  let body me () =
    for j = 1 to items do
      Proc.enqueue q (Value.Int ((100 * me) + j))
    done;
    let taken = ref 0 in
    while !taken < items do
      let v = Proc.dequeue q in
      if not (Value.is_bottom v) then begin
        got.(me) <- v :: got.(me);
        incr taken
      end
    done;
    Value.Int 0
  in
  let budget = Budget.create ~max_faulty_objects:1 ~max_faults_per_object:None () in
  let cfg =
    Engine.config ~allowed_faults:[ Fault_kind.Relaxation ]
      ~max_steps_per_proc:(64 * items * n) ~world ~budget ()
  in
  let rng = Ffault_prng.Rng.make ~seed in
  let payload _ctx = Value.Int (1 + Ffault_prng.Rng.int rng (k - 1)) in
  let injector =
    if p >= 1.0 then Injector.always ~payload Fault_kind.Relaxation
    else
      Injector.custom ~name:"relaxer" (fun ctx ->
          if Op.equal ctx.Injector.op Op.Dequeue && Ffault_prng.Rng.bernoulli rng ~p then
            Injector.Fault { kind = Fault_kind.Relaxation; payload = Some (payload ctx) }
          else Injector.No_fault)
  in
  let result =
    Engine.run cfg
      ~scheduler:(Scheduler.random ~seed:(Int64.add seed 13L))
      ~injector ~bodies:(Array.init n body) ()
  in
  let enqueued =
    List.concat_map
      (fun me -> List.init items (fun j -> Value.Int ((100 * me) + (j + 1))))
      (List.init n (fun i -> i))
  in
  let dequeued = List.concat_map (fun me -> got.(me)) (List.init n (fun i -> i)) in
  let sort = List.sort Value.compare in
  let conserved =
    List.length enqueued = List.length dequeued
    && List.for_all2 Value.equal (sort enqueued) (sort dequeued)
  in
  let max_distance, relaxed_steps =
    List.fold_left
      (fun (dmax, count) ev ->
        match ev with
        | Trace.Op_step { op = Op.Dequeue; pre_state; post_state; response; injected; _ } ->
            let step =
              { Triple.kind = Kind.Queue; pre_state; op = Op.Dequeue; post_state; response }
            in
            let d = Option.value ~default:0 (Queue_spec.dequeue_distance step) in
            (max dmax d, if Option.is_some injected then count + 1 else count)
        | _ -> (dmax, count))
      (0, 0) result.Engine.trace
  in
  {
    conserved;
    max_distance;
    relaxed_steps;
    audit_mismatches = List.length (Trace.audit ~world result.Engine.trace);
    all_decided = Engine.all_decided result;
  }

let run ?(quick = false) ?(seed = 0xE14L) () =
  let trials = if quick then 30 else 150 in
  let table =
    Table.create
      ~columns:
        [ "k"; "relax rate"; "trials"; "conserved"; "max distance (\xe2\x89\xa4 k-1?)";
          "relaxed steps"; "audit mismatches" ]
  in
  let ok = ref true in
  List.iter
    (fun (k, p) ->
      let conserved_all = ref true and decided_all = ref true in
      let dist = ref 0 and relaxed = ref 0 and mismatches = ref 0 in
      for i = 1 to trials do
        let s =
          run_workload ~n:3 ~items:3 ~k ~p ~seed:(Int64.add seed (Int64.of_int (i * 7919)))
        in
        if not s.conserved then conserved_all := false;
        if not s.all_decided then decided_all := false;
        if s.max_distance > !dist then dist := s.max_distance;
        relaxed := !relaxed + s.relaxed_steps;
        mismatches := !mismatches + s.audit_mismatches
      done;
      let within = !dist <= k - 1 in
      if not (!conserved_all && !decided_all && within && !mismatches = 0) then ok := false;
      Table.add_row table
        [
          Table.cell_int k;
          Table.cell_float ~decimals:2 p;
          Table.cell_int trials;
          Table.cell_bool !conserved_all;
          Fmt.str "%d (%s)" !dist (if within then "yes" else "NO");
          Table.cell_int !relaxed;
          Table.cell_int !mismatches;
        ])
    [ (2, 0.3); (2, 1.0); (4, 0.5); (8, 0.5) ];
  Report.make ~id:"E14" ~title:"Relaxed data structures as functional faults (\xc2\xa76)"
    ~claim:
      "A k-relaxed dequeue is an \xe2\x9f\xa8Dequeue, \xce\xa6'\xe2\x82\x96\xe2\x9f\xa9-fault: the \
       Definition-1 machinery injects, budgets and classifies relaxations unchanged; element \
       conservation survives any relaxation rate while only FIFO order degrades, within the \
       injected distance bound."
    ~passed:!ok
    ~tables:[ ("Producer/consumer over a relaxed queue (n=3, 3 items each)", table) ]
    ~notes:
      [
        "\"audit mismatches = 0\" means every relaxed step was independently re-recognized \
         from the trace as a structured \xe2\x9f\xa8Dequeue, \xce\xa6'\xe2\x9f\xa9-fault \
         (Definition 1), with no unlabeled deviations.";
      ]
    ()
