open Common
module Table = Ffault_stats.Table
module Summary = Ffault_stats.Summary
module Campaign = Ffault_campaign
module Bounded_faults = Consensus.Bounded_faults

(* E12 rides the campaign engine: each curve is one or more in-memory
   campaigns (Pool.run_trials over a declarative grid), and every data
   point is a cell of the aggregated report — the same pipeline
   `ffault campaign run` uses, so the figure-style series and the CLI
   artifacts can never drift apart. Shrinking is disabled: the curves
   want rates and costs, not witnesses. *)

let campaign_report spec =
  let records = ref [] in
  let _ =
    Campaign.Pool.run_trials ~max_shrinks_per_cell:0
      ~on_record:(fun r -> records := r :: !records)
      spec
  in
  Campaign.Report.of_records spec (List.rev !records)

let cell_rate (c : Campaign.Report.cell_stats) = c.cell.Campaign.Grid.rate

let run ?(quick = false) ?(seed = 0xE12L) () =
  let trials = if quick then 400 else 2000 in
  (* Curve 1: single-CAS consensus at n = 3 vs fault rate — one campaign
     whose grid is the rate axis. *)
  let report1 =
    campaign_report
      (Campaign.Spec.v ~name:"e12-curve1" ~protocol:"herlihy" ~f:[ 1 ] ~n:[ 3 ]
         ~rates:[ 0.05; 0.1; 0.2; 0.4; 0.6; 0.9 ]
         ~trials ~seed ())
  in
  let curve1 = Table.create ~columns:[ "fault rate p"; "trials"; "failure rate" ] in
  let rates =
    List.map
      (fun (c : Campaign.Report.cell_stats) -> (cell_rate c, c.failure_rate))
      report1.Campaign.Report.cells
  in
  List.iter
    (fun (p, r) ->
      Table.add_row curve1
        [ Table.cell_float ~decimals:2 p; Table.cell_int trials; Table.cell_float ~decimals:3 r ])
    rates;
  let monotone_ish =
    (* allow small sampling wiggles: compare first and last *)
    match rates with
    | (_, first) :: _ ->
        let _, last = List.nth rates (List.length rates - 1) in
        last > first
    | [] -> false
  in
  (* Curve 2: the sweep over m all-faulty objects at p = 0.5, n = 3.
     The protocol changes per point, so this is four one-cell
     campaigns. *)
  let curve2 = Table.create ~columns:[ "objects (all faulty)"; "trials"; "failure rate" ] in
  let m_rates =
    List.map
      (fun m ->
        let report =
          campaign_report
            (Campaign.Spec.v
               ~name:(Fmt.str "e12-curve2-m%d" m)
               ~protocol:(Fmt.str "sweep%d" m) ~f:[ m ] ~n:[ 3 ] ~rates:[ 0.5 ] ~trials
               ~seed:(Int64.add seed (Int64.of_int (1000 + m)))
               ())
        in
        match report.Campaign.Report.cells with
        | [ c ] -> (m, c.Campaign.Report.failure_rate)
        | _ -> assert false)
      [ 1; 2; 3; 4 ]
  in
  List.iter
    (fun (m, r) ->
      Table.add_row curve2
        [ Table.cell_int m; Table.cell_int trials; Table.cell_float ~decimals:3 r ])
    m_rates;
  let decaying =
    match m_rates with
    | (_, r1) :: _ ->
        let _, r4 = List.nth m_rates (List.length m_rates - 1) in
        r4 < r1
    | [] -> false
  in
  (* Curve 3: Fig. 3 cost scaling. n tracks f (n = f + 1), so each
     (f, t) point is its own one-cell campaign; the cost statistic is
     the report's per-trial worst ops/process summary. *)
  let curve3 =
    Table.create
      ~columns:
        [ "f"; "t"; "n"; "maxStage"; "mean worst ops"; "p99 worst ops"; "max worst ops" ]
  in
  let cost_trials = if quick then 100 else 400 in
  let cost ~f ~t =
    let n = f + 1 in
    let report =
      campaign_report
        (Campaign.Spec.v
           ~name:(Fmt.str "e12-curve3-f%d-t%d" f t)
           ~protocol:"fig3" ~f:[ f ] ~t:[ Some t ] ~n:[ n ] ~rates:[ 0.4 ]
           ~trials:cost_trials
           ~seed:(Int64.add seed (Int64.of_int ((f * 17) + t)))
           ())
    in
    let ops =
      match report.Campaign.Report.cells with
      | [ c ] -> c.Campaign.Report.steps
      | _ -> assert false
    in
    Table.add_row curve3
      [
        Table.cell_int f; Table.cell_int t; Table.cell_int n;
        Table.cell_int (Bounded_faults.max_stage ~f ~t);
        Table.cell_float ~decimals:1 (Summary.mean ops);
        Table.cell_float ~decimals:0 (Summary.percentile ops 99.0);
        Table.cell_float ~decimals:0 (Summary.max_value ops);
      ];
    Summary.mean ops
  in
  let c_f1 = cost ~f:1 ~t:1 in
  let _ = cost ~f:2 ~t:1 in
  let c_f3 = cost ~f:3 ~t:1 in
  let c_t1 = cost ~f:2 ~t:2 in
  let c_t3 = cost ~f:2 ~t:3 in
  let _ = if quick then 0.0 else cost ~f:4 ~t:1 in
  let cost_shapes = c_f3 > c_f1 && c_t3 > c_t1 in
  Report.make ~id:"E12" ~title:"Failure-probability and cost curves"
    ~claim:
      "Average-case shapes bracket the worst-case theorems: violation probability of the \
       unprotected protocol rises with the fault rate; adding (even all-faulty) objects \
       drives random failure rates down although no finite count is safe (Thm 18); Fig. 3's \
       cost grows superlinearly in f and linearly in t, tracking its t(4f + f\xc2\xb2) stage \
       budget."
    ~passed:(monotone_ish && decaying && cost_shapes)
    ~tables:
      [
        ("Single-CAS consensus, n = 3, one faulty object: failure rate vs p", curve1);
        ("Sweep protocol, n = 3, all m objects faulty, p = 0.5", curve2);
        ("Fig. 3 operations per process (p = 0.4 overriding)", curve3);
      ]
    ()
