(** E15 — recoverable consensus under the crash-restart fault dimension
    (doc/RECOVERY.md).

    Sweeps the CAS-fault kind × crash rate × persistence cross-product
    over three 2-process protocols through the campaign engine:

    - {e naive-tas}: the classic TAS construction with {e no} recovery
      section — a restarted process re-runs its body from scratch. A
      [Linearize] crash at the test-and-set orphans the win: the
      restarted winner sees the bit already set, concludes it lost, and
      reads the other register — deciding ⊥ (validity) or flipping the
      decision (agreement).
    - {e rec-tas}: registers + a CAS-register latch whose owner tag makes
      the recovery section self-identifying (Golab-style recoverable
      TAS).
    - {e rec-cas}: single CAS with owner-tagged values; body and recovery
      are the same idempotent decide.

    Expected: the naive baseline violates on crash-only schedules (f = 0,
    crash rate > 0, full persistence), every such violation attributed to
    crashes alone; both recoverable protocols stay clean on all
    crash-only cells across persistence modes; and the same seed
    reproduces the same grid outcomes. *)

val run : ?quick:bool -> ?seed:int64 -> unit -> Report.t
