module Table = Ffault_stats.Table
module Campaign = Ffault_campaign
module Persistence = Ffault_recover.Persistence

(* E15 rides the campaign engine exactly like E12: each protocol is one
   in-memory campaign over the CAS-fault-kind × crash-rate × persistence
   cross-product, aggregated by Campaign.Report — the same pipeline
   `ffault campaign run --crashes ...` (and the distributed serve/worker
   pair) produces, so the experiment and the CLI artifacts cannot drift.
   Shrinking is off: the sweep wants rates and attribution, not
   witnesses. *)

let campaign_report spec =
  let records = ref [] in
  let _ =
    Campaign.Pool.run_trials ~max_shrinks_per_cell:0
      ~on_record:(fun r -> records := r :: !records)
      spec
  in
  Campaign.Report.of_records spec (List.rev !records)

(* The swept grid, per protocol: f = 0 rows are crash-only (an empty
   fault budget offers no primitive fault regardless of rate), f = 1
   rows cross primitive CAS faults with the crash schedule. *)
let spec ~name ~protocol ~trials ~seed =
  Campaign.Spec.v ~name ~protocol ~f:[ 0; 1 ] ~n:[ 2 ]
    ~kinds:[ Ffault_fault.Fault_kind.Overriding; Ffault_fault.Fault_kind.Silent ]
    ~rates:[ 0.5 ] ~crashes:[ 1 ] ~crash_rates:[ 0.0; 0.4 ]
    ~persistence:[ Persistence.Persist_all; Persistence.Persist_lossy ]
    ~trials ~seed ()

let crash_only (c : Campaign.Report.cell_stats) =
  c.cell.Campaign.Grid.f = 0 && c.cell.Campaign.Grid.crash_rate > 0.0

let persist_all (c : Campaign.Report.cell_stats) =
  Persistence.equal c.cell.Campaign.Grid.persistence Persistence.Persist_all

let run ?(quick = false) ?(seed = 0xE15L) () =
  let trials = if quick then 150 else 600 in
  let reports =
    List.map
      (fun protocol ->
        ( protocol,
          campaign_report
            (spec ~name:(Fmt.str "e15-%s" protocol) ~protocol ~trials ~seed) ))
      [ "naive-tas"; "rec-tas"; "rec-cas" ]
  in
  let table =
    Table.create
      ~columns:
        [
          "protocol"; "f"; "kind"; "crash rate"; "persist"; "trials"; "failures";
          "fail rate"; "crash faults"; "attribution";
        ]
  in
  List.iter
    (fun (protocol, (report : Campaign.Report.t)) ->
      List.iter
        (fun (c : Campaign.Report.cell_stats) ->
          Table.add_row table
            [
              protocol;
              Table.cell_int c.cell.Campaign.Grid.f;
              Ffault_fault.Fault_kind.to_string c.cell.Campaign.Grid.kind;
              Table.cell_float ~decimals:2 c.cell.Campaign.Grid.crash_rate;
              Persistence.to_string c.cell.Campaign.Grid.persistence;
              Table.cell_int c.trials;
              Table.cell_int c.failures;
              Table.cell_float ~decimals:3 c.failure_rate;
              Table.cell_int c.total_crashes;
              (if c.failures = 0 then "-"
               else
                 Fmt.str "%dc/%dp/%dm" c.attr_crash_only c.attr_primitive_only
                   c.attr_mixed);
            ])
        report.Campaign.Report.cells)
    reports;
  let report_of p = List.assoc p reports in
  (* The headline separation: the naive baseline (no recovery section,
     restart = re-run the body from scratch) violates consensus on
     crash-only schedules under full persistence — a Linearize crash at
     the TAS orphans the win, the restarted winner sees the bit set,
     concludes it lost, and reads the other register — while both
     recoverable constructions stay clean on every crash-only cell. *)
  let naive_violates =
    List.exists
      (fun (c : Campaign.Report.cell_stats) ->
        crash_only c && persist_all c && c.failures > 0)
      (report_of "naive-tas").Campaign.Report.cells
  in
  let naive_crash_attributed =
    List.for_all
      (fun (c : Campaign.Report.cell_stats) ->
        (not (crash_only c))
        || (c.attr_primitive_only = 0 && c.attr_mixed = 0
           && c.attr_crash_only = c.failures))
      (report_of "naive-tas").Campaign.Report.cells
  in
  let recoverable_clean p =
    List.for_all
      (fun (c : Campaign.Report.cell_stats) ->
        c.cell.Campaign.Grid.f > 0 || c.failures = 0)
      (report_of p).Campaign.Report.cells
  in
  (* Same seed, same grid outcomes: the whole sweep is a deterministic
     function of (spec, seed), crash schedules included. *)
  let rerun =
    campaign_report (spec ~name:"e15-naive-tas" ~protocol:"naive-tas" ~trials ~seed)
  in
  let deterministic =
    List.for_all2
      (fun (a : Campaign.Report.cell_stats) (b : Campaign.Report.cell_stats) ->
        a.failures = b.failures && a.total_crashes = b.total_crashes
        && a.attr_crash_only = b.attr_crash_only)
      (report_of "naive-tas").Campaign.Report.cells rerun.Campaign.Report.cells
  in
  Report.make ~id:"E15" ~title:"Recoverable consensus under crash-restart faults"
    ~claim:
      "Crash-restart composes with CAS faults as an independent fault dimension: the \
       naive TAS baseline (restart re-runs the body) loses consensus on crash-only \
       schedules — every such violation attributed to crashes alone — while the \
       recoverable constructions (rec-cas, rec-tas, with recovery sections in Golab's \
       recoverable-linearizability style) stay clean on every crash-only cell, across \
       persistence modes; and the whole CAS-fault × crash-schedule grid is a \
       deterministic function of the seed."
    ~passed:
      (naive_violates && naive_crash_attributed
      && recoverable_clean "rec-tas" && recoverable_clean "rec-cas"
      && deterministic)
    ~tables:
      [
        ( "CAS-fault kind × crash rate × persistence (crashes = 1/proc, p = 0.5 on \
           f = 1 rows)",
          table );
      ]
    ~notes:
      [
        (if naive_violates then
           "naive-tas violates on crash-only schedules (crash attribution: every \
            violating trial charged crashes, no primitive fault)"
         else "naive-tas produced no crash-only violation — expected some");
        (if deterministic then "re-running the naive-tas campaign with the same seed \
                                reproduced every cell's outcome"
         else "NON-DETERMINISM: same seed, different grid outcomes");
      ]
    ()
