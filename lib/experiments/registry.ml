type entry = { id : string; title : string; run : quick:bool -> seed:int64 -> Report.t }

let entry id title run =
  { id; title; run = (fun ~quick ~seed -> run ?quick:(Some quick) ?seed:(Some seed) ()) }

let all =
  [
    entry "E1" "Two-process consensus from one faulty CAS (Fig. 1, Thm 4)"
      E1_two_process.run;
    entry "E2" "f-tolerant consensus from f+1 CAS objects (Fig. 2, Thm 5)" E2_f_tolerant.run;
    entry "E3" "(f, t, f+1)-tolerant consensus from f objects (Fig. 3, Thm 6)"
      E3_bounded_faults.run;
    entry "E4" "Lower bound: f objects, unbounded faults, n > 2 (Thm 18)"
      E4_unbounded_lower.run;
    entry "E5" "Covering adversary: f objects, n = f+2 (Thm 19)" E5_covering.run;
    entry "E6" "The faulty-CAS consensus hierarchy (\xc2\xa75.2)" E6_hierarchy.run;
    entry "E7" "Functional vs data faults (model separation)" E7_model_separation.run;
    entry "E8" "The CAS fault taxonomy (\xc2\xa73.4)" E8_taxonomy.run;
    entry "E9" "Universality over faulty CAS" E9_universal.run;
    entry "E10" "Severity and graceful degradation (\xc2\xa76/\xc2\xa77)" E10_degradation.run;
    entry "E11" "Mixed functional faults (Definition 3 remark)" E11_mixed_faults.run;
    entry "E12" "Failure-probability and cost curves" E12_curves.run;
    entry "E13" "Structured faults of a second primitive: TAS (\xc2\xa77)" E13_tas_faults.run;
    entry "E14" "Relaxed data structures as functional faults (\xc2\xa76)" E14_relaxation.run;
    entry "E15" "Recoverable consensus under crash-restart faults" E15_recoverable.run;
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun e -> String.equal e.id id) all

let run_all ?(quick = false) ?(seed = 0xF417L) () =
  List.map (fun e -> e.run ~quick ~seed) all
