open Common
module Protocol = Consensus.Protocol
module Table = Ffault_stats.Table
module Mass = Ffault_verify.Mass
module Reduction = Ffault_verify.Reduction
module Fault_kind = Ffault_fault.Fault_kind
module Injector = Ffault_fault.Injector
module Scheduler = Ffault_sim.Scheduler
module Engine = Ffault_sim.Engine

let always kind _rng = Injector.always kind

let run ?(quick = false) ?(seed = 0xE8L) () =
  let runs = if quick then 200 else 1000 in
  let table =
    Table.create ~columns:[ "fault"; "t"; "protocol"; "paper's prediction"; "observed" ]
  in
  let ok = ref true in
  let row ~fault ~t ~protocol ~prediction ~observed ~matches =
    if not matches then ok := false;
    Table.add_row table [ fault; t; protocol; prediction; observed ]
  in
  (* Silent, bounded: retry decides within t + O(1) steps. *)
  List.iter
    (fun t ->
      let params = Protocol.params ~t ~n_procs:3 ~f:1 () in
      let setup =
        Check.setup ~allowed_faults:[ Fault_kind.Silent ] Consensus.Silent_retry.protocol
          params
      in
      let s = mass ~injector:(always Fault_kind.Silent) ~runs ~seed setup in
      let matches = s.Mass.failure_count = 0 && s.Mass.max_steps_one_proc <= t + 4 in
      row ~fault:"silent" ~t:(Table.cell_int t) ~protocol:"retry loop"
        ~prediction:"consensus in \xe2\x89\xa4 t+O(1) steps/proc"
        ~observed:
          (Fmt.str "%s violations, \xe2\x89\xa4 %d steps/proc" (violation_cell s)
             s.Mass.max_steps_one_proc)
        ~matches)
    [ 1; 3; 5 ];
  (* Silent, unbounded: non-termination. *)
  let params_inf = Protocol.params ~n_procs:3 ~f:1 () in
  let setup_inf =
    Check.setup ~allowed_faults:[ Fault_kind.Silent ] Consensus.Silent_retry.protocol
      params_inf
  in
  let s_inf = mass ~injector:(always Fault_kind.Silent) ~runs:(runs / 4) ~seed setup_inf in
  let all_diverge = s_inf.Mass.failure_count = s_inf.Mass.runs in
  row ~fault:"silent" ~t:"\xe2\x88\x9e" ~protocol:"retry loop"
    ~prediction:"never terminates"
    ~observed:
      (Fmt.str "%d/%d runs hit the step budget without deciding" s_inf.Mass.failure_count
         s_inf.Mass.runs)
    ~matches:all_diverge;
  (* The same non-termination as a measured exhaustion curve: under an
     unbounded silent adversary every process runs its whole per-process
     step budget and returns the structured [Exhausted] outcome, at every
     budget we try — raising the budget buys steps, never a decision. *)
  let budgets = [ 64; 256; 1024 ] in
  let exhausted_at b =
    let cfg =
      { (Check.engine_config setup_inf) with Engine.max_steps_per_proc = b;
        max_total_steps = b * 16 }
    in
    let bodies =
      Protocol.bodies Consensus.Silent_retry.protocol params_inf
        ~inputs:setup_inf.Check.inputs
    in
    let r =
      Engine.run cfg ~scheduler:(Scheduler.round_robin ())
        ~injector:(Injector.always Fault_kind.Silent) ~bodies ()
    in
    Array.for_all
      (function Engine.Exhausted { steps; budget } -> budget = b && steps > b | _ -> false)
      r.Engine.outcomes
  in
  let curve = List.map (fun b -> (b, exhausted_at b)) budgets in
  let curve_ok = List.for_all snd curve in
  row ~fault:"silent" ~t:"\xe2\x88\x9e" ~protocol:"retry loop (budget curve)"
    ~prediction:"exhausts any per-proc step budget"
    ~observed:
      (String.concat ", "
         (List.map
            (fun (b, ok) -> Fmt.str "budget %d: %s" b (if ok then "exhausted" else "DECIDED"))
            curve))
    ~matches:curve_ok;
  (* Invisible: executable reduction to data faults. *)
  let params_inv = Protocol.params ~t:2 ~n_procs:3 ~f:1 () in
  let setup_inv =
    Check.setup ~allowed_faults:[ Fault_kind.Invisible ] Consensus.Single_cas.herlihy
      params_inv
  in
  let report_inv =
    Check.run setup_inv
      ~scheduler:(Scheduler.round_robin ())
      ~injector:(Injector.always Fault_kind.Invisible)
      ()
  in
  let original = report_inv.Check.result.Engine.trace in
  let rewritten = Reduction.invisible_to_data original in
  let check = Reduction.verify ~world:(Check.world setup_inv) ~original ~rewritten in
  let reduction_ok =
    check.Reduction.responses_preserved && check.Reduction.steps_all_correct
    && check.Reduction.corruptions_added > 0
  in
  row ~fault:"invisible" ~t:"2" ~protocol:"herlihy (trace rewriting)"
    ~prediction:"reducible to a data-fault execution"
    ~observed:(Fmt.str "%a" Reduction.pp_check check)
    ~matches:reduction_ok;
  (* Arbitrary: defeats Fig. 2 (validity breaks). *)
  let params_arb = Protocol.params ~t:1 ~n_procs:3 ~f:1 () in
  let setup_arb =
    Check.setup ~allowed_faults:[ Fault_kind.Arbitrary ] Consensus.F_tolerant.protocol
      params_arb
  in
  let s_arb = mass ~injector:(always Fault_kind.Arbitrary) ~runs ~seed setup_arb in
  let arb_breaks = s_arb.Mass.failure_count > 0 in
  row ~fault:"arbitrary" ~t:"1" ~protocol:"fig2 (f+1 objects)"
    ~prediction:"not tolerated (needs the O(f log f) construction of [30])"
    ~observed:(Fmt.str "%s violations in %d runs" (violation_cell s_arb) s_arb.Mass.runs)
    ~matches:arb_breaks;
  (* Nonresponsive: one fault removes wait-freedom. *)
  let params_nr = Protocol.params ~t:1 ~n_procs:3 ~f:1 () in
  let setup_nr =
    Check.setup ~allowed_faults:[ Fault_kind.Nonresponsive ] Consensus.Single_cas.herlihy
      params_nr
  in
  let report_nr =
    Check.run setup_nr
      ~scheduler:(Scheduler.round_robin ())
      ~injector:
        (Injector.on_invocations
           [ (0, Injector.Fault { kind = Fault_kind.Nonresponsive; payload = None }) ])
      ()
  in
  let hung =
    List.exists
      (function
        | Check.Wait_freedom { outcome = Engine.Hung; _ } -> true | _ -> false)
      report_nr.Check.violations
  in
  row ~fault:"nonresponsive" ~t:"1" ~protocol:"herlihy"
    ~prediction:"wait-freedom lost (impossibility per [30])"
    ~observed:(if hung then "process hung forever" else "UNEXPECTEDLY COMPLETED")
    ~matches:hung;
  Report.make ~id:"E8" ~title:"The CAS functional-fault taxonomy (\xc2\xa73.4)"
    ~claim:
      "Silent faults with bounded t are overcome by retrying; unbounded silent faults prevent \
       termination; invisible faults reduce to data faults; arbitrary faults defeat the \
       overriding-fault constructions; one nonresponsive fault removes wait-freedom."
    ~passed:!ok
    ~tables:[ ("Fault taxonomy", table) ]
    ()
